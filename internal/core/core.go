// Package core is the public facade of the reproduction: an end-to-end
// query recommender that consumes raw search logs (or pre-segmented
// sessions), runs the paper's data pipeline (30-minute segmentation,
// aggregation, frequency-threshold reduction), trains the MVMM mixture, and
// serves ranked next-query recommendations online.
//
// Typical usage:
//
//	rec, err := core.TrainFromLog(logFile, core.DefaultConfig())
//	suggestions := core.Recommend(rec, []string{"nokia n73", "nokia n73 themes"}, 5)
//
// Serving is expressed over the Recommender interface: Engine (the trained
// MVMM pipeline) and FromPredictor adapters over any compiled.Predictor
// (HMM, cluster, pairwise fleet arms) implement the same seam, so cache,
// fleet and serve hold a Recommender and never know which family answers.
//
// Persistence: Save writes the current QRECV005 container (dictionary,
// interpreted mixture, and the compact quantised CPS5 compiled blob at a
// page-aligned offset); SaveAs keeps the QRECV002/QRECV003/QRECV004
// writers. Load reads every version back to QRECV001. LoadPath is the
// production cold-start route: for V003/V004/V005 files it memory-maps the
// compiled blob (no decoding, lazy page-in, cross-process page sharing) and
// defers the interpreted-mixture decode until first Model() use; LoadInfo
// reports the route taken, the blob encoding served and its byte length.
//
// Invariants: an Engine is immutable after training or loading — the
// Recommender methods are safe for unbounded concurrent callers without
// locking, and the Append* variants are allocation-free with recycled
// buffers. Serving goes through the
// compiled single-PST form whenever it exists (always, for mixtures built
// by this pipeline); quantised (CPS4-loaded) models serve with a bounded
// ≤ ~2e-5 absolute probability error, and SaveAs transparently recompiles
// from the mixture when an exact format is requested from one.
package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/compiled"
	"repro/internal/logfmt"
	"repro/internal/markov"
	"repro/internal/model"
	"repro/internal/query"
	"repro/internal/session"
)

// Config controls training.
type Config struct {
	// SessionGap is the segmentation threshold; 0 applies the paper's
	// 30-minute rule.
	SessionGap time.Duration
	// ReductionThreshold drops aggregated sessions with frequency <= this
	// value (the paper uses 5). Negative disables reduction.
	ReductionThreshold int
	// Epsilons lists the mixture's VMM growth thresholds; nil uses the
	// paper's eleven values {0.0, 0.01, ..., 0.1}.
	Epsilons []float64
	// Mixture tunes σ learning and parallel component training.
	Mixture markov.MVMMOptions
}

// DefaultConfig mirrors the paper's experimental setup.
func DefaultConfig() Config {
	return Config{
		SessionGap:         session.DefaultGap,
		ReductionThreshold: 5,
		Epsilons:           markov.DefaultEpsilons(),
		Mixture:            markov.MVMMOptions{Parallel: true},
	}
}

// Suggestion is one recommended query with its mixture score.
type Suggestion struct {
	Query string
	Score float64
}

// Engine is the trained end-to-end MVMM recommendation system — the
// concrete Recommender behind the paper's main pipeline.
//
// After training (or loading) the mixture is compiled into a flat single-PST
// serving form (internal/compiled): AppendSuggestions and Probability run
// one trie descent with zero steady-state allocations instead of walking the
// K map-based component trees. The interpreted mixture is retained as the
// build artifact — evaluation code reads it via Model, and it is what Save
// persists alongside the compiled form. Should compilation ever fail (it
// cannot for mixtures built by this pipeline) the engine transparently
// serves from the interpreted model instead.
type Engine struct {
	dict  *query.Dict
	mix   *markov.MVMM
	comp  *compiled.Model // nil ⇒ interpreted fallback
	stats session.Stats
	cfg   Config
	info  LoadInfo

	// batchWorkers caps the parallel batch descent's fan-out (see
	// SetBatchWorkers); 0 means GOMAXPROCS.
	batchWorkers atomic.Int32

	// V003 mmap loads defer decoding the interpreted mixture (serving only
	// needs the compiled form): Model() triggers mixLoad exactly once.
	mixOnce sync.Once
	mixLoad func() (*markov.MVMM, error)
	mixErr  error
}

// SetBatchWorkers caps the worker fan-out of the parallel batch descent
// behind RecommendBatchIDs: n <= 0 restores the default (GOMAXPROCS), 1
// forces the sequential path, anything else bounds the goroutines one batch
// may spawn. Safe to call concurrently with serving — the knob is read per
// batch. Results are bit-identical at any setting; only latency changes.
func (r *Engine) SetBatchWorkers(n int) {
	if n < 0 {
		n = 0
	}
	r.batchWorkers.Store(int32(n))
}

// Model-provenance modes reported by LoadInfo.
const (
	LoadModeTrained = "trained" // built in-process by TrainFrom*
	LoadModeHeap    = "heap"    // decoded from a model file into the heap
	LoadModeMmap    = "mmap"    // compiled form memory-mapped from a V003/V004 file
)

// LoadInfo describes how the recommender's serving model materialised —
// surfaced through /healthz and cmd/serve logs so cold-start behaviour and
// the served memory footprint are observable in production.
type LoadInfo struct {
	Mode      string        // LoadModeTrained, LoadModeHeap or LoadModeMmap
	Version   string        // save-format magic of the source file, "" if trained
	Format    string        // compiled-blob encoding served ("CPS1", "CPS3", "CPS4", "CPS5"); "" if compiled in-process
	BlobBytes int64         // byte length of the compiled blob decoded or mapped; 0 if compiled in-process
	MapAdvice string        // kernel paging hints applied to the mapping ("willneed", "mlock", …); "" when none
	Duration  time.Duration // wall time of the Load/LoadPath call
}

// LoadInfo reports the provenance of the serving model.
func (r *Engine) LoadInfo() LoadInfo { return r.info }

// predBufs pools prediction scratch for the zero-allocation serving path.
var predBufs = sync.Pool{New: func() any {
	b := make([]model.Prediction, 0, 64)
	return &b
}}

// TrainFromLog reads a raw search log (logfmt records), runs the full
// pipeline and trains the MVMM.
func TrainFromLog(r io.Reader, cfg Config) (*Engine, error) {
	dict := query.NewDict()
	sessions, err := session.SegmentReader(logfmt.NewReader(r), dict, cfg.SessionGap)
	if err != nil {
		return nil, fmt.Errorf("core: segmenting log: %w", err)
	}
	return TrainFromSessions(dict, sessions, cfg), nil
}

// TrainFromSessions trains from already-segmented sessions whose queries
// were interned into dict.
func TrainFromSessions(dict *query.Dict, sessions []query.Seq, cfg Config) *Engine {
	agg := session.Aggregate(sessions)
	if cfg.ReductionThreshold >= 0 {
		agg, _ = session.Reduce(agg, uint64(cfg.ReductionThreshold))
	}
	return TrainFromAggregated(dict, agg, cfg)
}

// TrainFromAggregated trains from aggregated (sequence, frequency) sessions.
// No further reduction is applied.
func TrainFromAggregated(dict *query.Dict, agg []query.Session, cfg Config) *Engine {
	eps := cfg.Epsilons
	if len(eps) == 0 {
		eps = markov.DefaultEpsilons()
	}
	mix := markov.NewMVMMFromEpsilons(agg, eps, dict.Len(), cfg.Mixture)
	r := &Engine{dict: dict, mix: mix, stats: session.Collect(agg), cfg: cfg,
		info: LoadInfo{Mode: LoadModeTrained}}
	r.comp, _ = compiled.Compile(mix)
	return r
}

// AppendSuggestions appends up to n ranked suggestions for the interned
// context to dst and returns the extended slice. With a recycled dst this is
// the zero-allocation serving path: the compiled model predicts into pooled
// scratch and suggestion strings are shared with the dictionary.
func (r *Engine) AppendSuggestions(dst []Suggestion, ctx query.Seq, n int) []Suggestion {
	if len(ctx) == 0 {
		return dst
	}
	if r.comp == nil { // interpreted fallback
		for _, p := range r.mix.Predict(ctx, n) {
			dst = append(dst, Suggestion{Query: r.dict.String(p.Query), Score: p.Score})
		}
		return dst
	}
	buf := predBufs.Get().(*[]model.Prediction)
	preds := r.comp.AppendPredictions((*buf)[:0], ctx, n)
	for _, p := range preds {
		dst = append(dst, Suggestion{Query: r.dict.String(p.Query), Score: p.Score})
	}
	*buf = preds[:0]
	predBufs.Put(buf)
	return dst
}

// RecommendBatchIDs scores many interned contexts through the shared-scratch
// batched trie descent (compiled.PredictBatchParallel): contexts are grouped
// by shared suffix so sibling lookups amortise cache-line loads, and large
// batches are split across up to SetBatchWorkers goroutines (default
// GOMAXPROCS; answers are bit-identical to the sequential walk), which is
// what makes POST /suggest/batch cheaper than n single requests. Results
// align 1:1 with ctxs; uncovered or empty contexts yield nil entries. Each
// non-nil result slice is freshly allocated (callers cache them).
func (r *Engine) RecommendBatchIDs(ctxs []query.Seq, ns []int) [][]Suggestion {
	out := make([][]Suggestion, len(ctxs))
	if r.comp == nil { // interpreted fallback: no batched descent available
		for i, ctx := range ctxs {
			out[i] = RecommendIDs(r, ctx, ns[i])
		}
		return out
	}
	r.comp.PredictBatchParallel(ctxs, ns, int(r.batchWorkers.Load()), func(i int, preds []model.Prediction) {
		if len(preds) == 0 {
			return
		}
		ss := make([]Suggestion, len(preds))
		for j, p := range preds {
			ss[j] = Suggestion{Query: r.dict.String(p.Query), Score: p.Score}
		}
		out[i] = ss
	})
	return out
}

// Probability returns the model's estimate that the user's next query is q
// given the context.
func (r *Engine) Probability(context []string, q string) float64 {
	ctx := r.internContext(context)
	id, ok := r.dict.Lookup(q)
	if !ok {
		return 0
	}
	if r.comp != nil {
		return r.comp.Prob(ctx, id)
	}
	return r.mix.Prob(ctx, id)
}

// internContext resolves context strings to IDs, dropping unknown queries.
func (r *Engine) internContext(context []string) query.Seq {
	return AppendContext(r.dict, make(query.Seq, 0, len(context)), context)
}

// Dict exposes the query dictionary.
func (r *Engine) Dict() *query.Dict { return r.dict }

// Model exposes the trained mixture (for evaluation and persistence). For
// recommenders mmap-loaded through LoadPath the mixture is decoded lazily on
// first call — cold starts that only serve never pay for it. Returns nil if
// the deferred decode fails (the error surfaces through Save).
func (r *Engine) Model() *markov.MVMM {
	if r.mixLoad != nil {
		r.mixOnce.Do(func() {
			m, err := r.mixLoad()
			if err != nil {
				r.mixErr = err
				return
			}
			r.mix = m
		})
	}
	return r.mix
}

// Close releases resources tied to the serving model — for V003 files loaded
// through LoadPath it unmaps the compiled form (otherwise it is a no-op; the
// GC would reclaim the mapping eventually regardless). The recommender must
// not be used after Close.
func (r *Engine) Close() error {
	if r.comp != nil {
		return r.comp.Release()
	}
	return nil
}

// CompiledModel exposes the flat serving form, or nil when the engine fell
// back to the interpreted mixture.
func (r *Engine) CompiledModel() *compiled.Model { return r.comp }

// Predictor implements Recommender: the compiled trie, or nil when the
// engine serves from the interpreted mixture (which predates the Predictor
// seam and has no zero-allocation contract).
func (r *Engine) Predictor() compiled.Predictor {
	if r.comp == nil {
		return nil
	}
	return r.comp
}

// Stats returns the training-collection statistics (Table IV shape).
func (r *Engine) Stats() session.Stats { return r.stats }

// Save-format magics. V001 files hold (dictionary, mixture); V002 appends a
// third section with the varint-encoded (CPS1) compiled single-PST serving
// form so cold starts skip recompilation; V003 stores the compiled form in
// the mmap-able CPS3 flat layout at a page-aligned file offset so cold
// starts skip decoding entirely (LoadPath maps it; the reader-based Load
// decodes it into the heap); V004 keeps the V003 framing but stores the
// compiled form in the quantised CPS4 layout — fixed-point uint16 follower
// probabilities against per-node float32 steps and width-narrowed node
// arrays — which shrinks the served blob by roughly half at a bounded
// (≤ ~2e-5 absolute) probability error. V005 keeps the same framing with
// the compact CPS5 layout — delta/varint-packed follower IDs and CSR
// offsets on top of CPS4's quantisation, at the same error bound. Load and
// LoadPath read all five; Save writes V005 (falling back blob-by-blob to
// CPS4, then exact CPS3, when a model's statistics refuse a tier). SaveAs
// keeps the V002/V003/V004 writers for deployments that need bit-exact
// serving or pre-V005 readers.
const (
	saveMagicV1 = "QRECV001"
	saveMagicV2 = "QRECV002"
	saveMagicV3 = "QRECV003"
	saveMagicV4 = "QRECV004"
	saveMagicV5 = "QRECV005"
)

// compiledAlign is the file alignment of the V003/V004 compiled blob. 4 KiB
// covers every common page size; LoadPath additionally aligns the mapping
// down to the runtime page boundary, so larger-page systems still work.
const compiledAlign = 4096

// writeSection emits one length-prefixed section so Load can hand each
// decoder a bounded reader (decoders buffer internally and would otherwise
// read past their section).
func writeSection(w io.Writer, name string, wt io.WriterTo) error {
	var buf bytes.Buffer
	if wt != nil {
		if _, err := wt.WriteTo(&buf); err != nil {
			return fmt.Errorf("core: saving %s: %w", name, err)
		}
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(buf.Len()))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// Save persists the recommender — dictionary, interpreted mixture (the build
// artifact) and compiled serving form — in the current V005 layout (the
// compact CPS5 compiled blob, falling back to CPS4/CPS3 when the model's
// statistics refuse a tier). A recommender without a compiled model writes
// an empty compiled section; Load recompiles.
func (r *Engine) Save(w io.Writer) error {
	return r.SaveAs(w, saveMagicV5)
}

// exactComp returns a compiled model carrying exact float64 probabilities,
// as the CPS1 (V002) and CPS3 (V003) writers require: the served model when
// it is exact, a recompilation of the interpreted mixture when the served
// model was loaded from a quantised CPS4 blob (whose raw counts are gone).
// Returns nil when no compiled form can be produced — the caller then
// writes an empty compiled section and Load recompiles.
func (r *Engine) exactComp(mix *markov.MVMM) *compiled.Model {
	if r.comp != nil && r.comp.Exact() {
		return r.comp
	}
	comp, _ := compiled.Compile(mix)
	return comp
}

// SaveAs persists the recommender in a specific save-format version:
// "QRECV005" (the Save default, compact quantised mmap-able compiled
// section), "QRECV004" (quantised mmap-able compiled section), "QRECV003"
// (exact mmap-able compiled section) or "QRECV002" (varint compiled
// section, for files older deployments must read). It exists for
// compatibility tooling and for deployments that need the exact formats'
// bit-identical serving.
func (r *Engine) SaveAs(w io.Writer, version string) error {
	mix := r.Model()
	if mix == nil {
		return fmt.Errorf("core: mixture unavailable for save: %w", r.mixErr)
	}
	switch version {
	case saveMagicV2:
		if _, err := io.WriteString(w, saveMagicV2); err != nil {
			return err
		}
		if err := writeSection(w, "dictionary", r.dict); err != nil {
			return err
		}
		if err := writeSection(w, "model", mix); err != nil {
			return err
		}
		var comp io.WriterTo
		if c := r.exactComp(mix); c != nil {
			comp = c
		}
		return writeSection(w, "compiled model", comp)
	case saveMagicV3, saveMagicV4, saveMagicV5:
		return r.saveFlat(w, mix, version)
	default:
		return fmt.Errorf("core: unknown save version %q", version)
	}
}

// countWriter tracks the file offset so saveFlat can pad the compiled blob
// to a page boundary.
type countWriter struct {
	w io.Writer
	n int64
}

func (cw *countWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// saveFlat writes the shared V003/V004/V005 layout: magic, dictionary and
// mixture sections as in V002, then the compiled model as a flat blob —
// exact CPS3 under the V003 magic, quantised CPS4 under V004, compact CPS5
// under V005 — padded to start on a compiledAlign boundary, the
// precondition for LoadPath's zero-copy mmap. The blob is framed as (uint64
// pad length, pad, uint64 blob length, blob). A save of a model whose
// statistics do not fit the requested tier (see compiled.ErrUnquantisable)
// falls back one tier at a time — V005 → CPS4 → exact CPS3 — in the same
// container; LoadPath dispatches on the blob's own magic, so nothing
// downstream cares.
func (r *Engine) saveFlat(w io.Writer, mix *markov.MVMM, version string) error {
	cw := &countWriter{w: w}
	if _, err := io.WriteString(cw, version); err != nil {
		return err
	}
	if err := writeSection(cw, "dictionary", r.dict); err != nil {
		return err
	}
	if err := writeSection(cw, "model", mix); err != nil {
		return err
	}
	var blob []byte
	if version == saveMagicV5 && r.comp != nil {
		b5, err := r.comp.AppendFlat5(nil, false)
		if err != nil && !errors.Is(err, compiled.ErrUnquantisable) {
			return fmt.Errorf("core: compacting compiled model: %w", err)
		}
		if err == nil {
			blob = b5
		}
	}
	if len(blob) == 0 && (version == saveMagicV4 || version == saveMagicV5) && r.comp != nil {
		b4, err := r.comp.AppendFlat4(nil)
		if err != nil && !errors.Is(err, compiled.ErrUnquantisable) {
			return fmt.Errorf("core: quantising compiled model: %w", err)
		}
		if err == nil {
			blob = b4
		}
	}
	if len(blob) == 0 {
		if c := r.exactComp(mix); c != nil {
			blob = c.AppendFlat(nil)
		}
	}
	pad := int((compiledAlign - (cw.n+16)%compiledAlign) % compiledAlign)
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(pad))
	if _, err := cw.Write(hdr[:]); err != nil {
		return err
	}
	if pad > 0 {
		if _, err := cw.Write(make([]byte, pad)); err != nil {
			return err
		}
	}
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(blob)))
	if _, err := cw.Write(hdr[:]); err != nil {
		return err
	}
	_, err := cw.Write(blob)
	return err
}

// Load restores a recommender written by Save from a stream: the current
// V005 layout (compact quantised compiled section decoded into the heap —
// use LoadPath for the zero-copy mmap), the V004 layout, the V003 layout,
// the V002 layout, or the legacy V001 layout (which lacks the compiled
// section — the serving form is then compiled from the mixture on the
// spot).
func Load(rd io.Reader) (*Engine, error) {
	start := time.Now()
	r, info, err := load(rd)
	if err != nil {
		return nil, err
	}
	info.Mode = LoadModeHeap
	info.Duration = time.Since(start)
	r.info = info
	return r, nil
}

func load(rd io.Reader) (*Engine, LoadInfo, error) {
	var info LoadInfo
	magic := make([]byte, len(saveMagicV1))
	if _, err := io.ReadFull(rd, magic); err != nil {
		return nil, info, fmt.Errorf("core: reading header: %w", err)
	}
	version := string(magic)
	info.Version = version
	switch version {
	case saveMagicV1, saveMagicV2, saveMagicV3, saveMagicV4, saveMagicV5:
	default:
		return nil, info, fmt.Errorf("core: unrecognised model file header %q", magic)
	}
	section := func(name string) (io.Reader, uint64, error) {
		var hdr [8]byte
		if _, err := io.ReadFull(rd, hdr[:]); err != nil {
			return nil, 0, fmt.Errorf("core: reading %s header: %w", name, err)
		}
		n := binary.LittleEndian.Uint64(hdr[:])
		if n > 1<<40 {
			return nil, 0, fmt.Errorf("core: implausible %s section of %d bytes", name, n)
		}
		return io.LimitReader(rd, int64(n)), n, nil
	}
	ds, _, err := section("dictionary")
	if err != nil {
		return nil, info, err
	}
	dict, err := query.ReadDict(ds)
	if err != nil {
		return nil, info, fmt.Errorf("core: loading dictionary: %w", err)
	}
	ms, _, err := section("model")
	if err != nil {
		return nil, info, err
	}
	mix, err := markov.ReadMVMM(ms)
	if err != nil {
		return nil, info, fmt.Errorf("core: loading model: %w", err)
	}
	r := &Engine{dict: dict, mix: mix, cfg: DefaultConfig()}
	switch version {
	case saveMagicV2:
		cs, n, err := section("compiled model")
		if err != nil {
			return nil, info, err
		}
		if n > 0 {
			comp, err := compiled.Read(cs)
			if err != nil {
				return nil, info, fmt.Errorf("core: loading compiled model: %w", err)
			}
			r.comp = comp
			info.Format = "CPS1"
			info.BlobBytes = int64(n)
			return r, info, nil
		}
	case saveMagicV3, saveMagicV4, saveMagicV5:
		var hdr [8]byte
		if _, err := io.ReadFull(rd, hdr[:]); err != nil {
			return nil, info, fmt.Errorf("core: reading compiled padding header: %w", err)
		}
		pad := binary.LittleEndian.Uint64(hdr[:])
		if pad >= compiledAlign {
			return nil, info, fmt.Errorf("core: implausible compiled-section padding of %d bytes", pad)
		}
		if _, err := io.CopyN(io.Discard, rd, int64(pad)); err != nil {
			return nil, info, fmt.Errorf("core: skipping compiled padding: %w", err)
		}
		if _, err := io.ReadFull(rd, hdr[:]); err != nil {
			return nil, info, fmt.Errorf("core: reading compiled-section header: %w", err)
		}
		blobLen := binary.LittleEndian.Uint64(hdr[:])
		if blobLen > 1<<40 {
			return nil, info, fmt.Errorf("core: implausible compiled section of %d bytes", blobLen)
		}
		if blobLen > 0 {
			blob := make([]byte, blobLen)
			if _, err := io.ReadFull(rd, blob); err != nil {
				return nil, info, fmt.Errorf("core: reading compiled section: %w", err)
			}
			comp, err := compiled.FromBytes(blob, compiled.ViewCopy)
			if err != nil {
				return nil, info, fmt.Errorf("core: loading compiled model: %w", err)
			}
			r.comp = comp
			info.Format = blobFormat(blob)
			info.BlobBytes = int64(blobLen)
			return r, info, nil
		}
	}
	r.comp, _ = compiled.Compile(mix)
	return r, info, nil
}

// blobFormat reports a flat compiled blob's encoding by its leading magic.
func blobFormat(blob []byte) string {
	if len(blob) < 4 {
		return ""
	}
	return string(blob[:4])
}

// LoadPath restores a recommender from a model file on disk, taking the
// fastest load path the file allows. For V003/V004/V005 files the compiled
// serving form is memory-mapped in place — a cold start costs the
// dictionary decode plus O(1) mapping work, the kernel faults trie pages in
// lazily, and concurrent server processes share one page-cache copy — and
// the interpreted mixture is decoded lazily on first Model() use, so a
// process that only serves never pays for it. V001/V002 files (and
// V003/V004/V005 files without a compiled section, or platforms without
// mmap) fall back to the reader-based heap Load. LoadInfo reports which
// path was taken, the blob encoding served (CPS3, quantised CPS4 or
// compact CPS5) and its byte length.
func LoadPath(path string) (*Engine, error) {
	return LoadPathWith(path, LoadOptions{})
}

// LoadOptions tunes LoadPathWith's mmap fast path. The zero value is
// LoadPath's behaviour: plain demand paging.
type LoadOptions struct {
	// MapWillNeed requests madvise(MADV_WILLNEED) on the mapped compiled
	// blob: asynchronous sequential readahead instead of per-page faults on
	// first touch, removing the cold-start latency spike.
	MapWillNeed bool
	// MapLock requests mlock(2) on the mapping: trie pages become
	// unevictable under memory pressure (needs RLIMIT_MEMLOCK headroom).
	MapLock bool
}

// LoadPathWith is LoadPath with explicit load options. Paging hints are
// best-effort: a refused hint degrades to demand paging and the outcome is
// reported in LoadInfo.MapAdvice (and onward through /healthz), never as an
// error.
func LoadPathWith(path string, opts LoadOptions) (*Engine, error) {
	start := time.Now()
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	// The descriptor is retained (not closed) on the successful V003/V004
	// path: the lazy mixture load below reads through it, which pins the
	// inode the compiled form was mapped from — a deploy replacing the file
	// at this path must not make Model() decode a different file's bytes.
	keepOpen := false
	defer func() {
		if !keepOpen {
			f.Close()
		}
	}()
	magic := make([]byte, len(saveMagicV3))
	if _, err := io.ReadFull(f, magic); err != nil {
		return nil, fmt.Errorf("core: reading header: %w", err)
	}
	version := string(magic)
	if version != saveMagicV3 && version != saveMagicV4 && version != saveMagicV5 {
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return nil, err
		}
		return Load(f)
	}

	readU64At := func(off int64, what string) (uint64, error) {
		var hdr [8]byte
		if _, err := f.ReadAt(hdr[:], off); err != nil {
			return 0, fmt.Errorf("core: reading %s: %w", what, err)
		}
		return binary.LittleEndian.Uint64(hdr[:]), nil
	}

	off := int64(len(version))
	dictLen, err := readU64At(off, "dictionary header")
	if err != nil {
		return nil, err
	}
	if dictLen > 1<<40 {
		return nil, fmt.Errorf("core: implausible dictionary section of %d bytes", dictLen)
	}
	dict, err := query.ReadDict(io.NewSectionReader(f, off+8, int64(dictLen)))
	if err != nil {
		return nil, fmt.Errorf("core: loading dictionary: %w", err)
	}
	off += 8 + int64(dictLen)

	mixLen, err := readU64At(off, "model header")
	if err != nil {
		return nil, err
	}
	if mixLen > 1<<40 {
		return nil, fmt.Errorf("core: implausible model section of %d bytes", mixLen)
	}
	mixOff := off + 8
	off += 8 + int64(mixLen)

	pad, err := readU64At(off, "compiled padding header")
	if err != nil {
		return nil, err
	}
	if pad >= compiledAlign {
		return nil, fmt.Errorf("core: implausible compiled-section padding of %d bytes", pad)
	}
	blobLen, err := readU64At(off+8+int64(pad), "compiled-section header")
	if err != nil {
		return nil, err
	}
	blobOff := off + 16 + int64(pad)
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if blobLen > 1<<40 || blobOff+int64(blobLen) > fi.Size() {
		return nil, fmt.Errorf("core: compiled section of %d bytes at offset %d overruns the %d-byte file",
			blobLen, blobOff, fi.Size())
	}
	if blobLen == 0 {
		// No compiled section: recompiling needs the mixture — heap Load.
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return nil, err
		}
		return Load(f)
	}

	var blobMagic [4]byte
	if _, err := f.ReadAt(blobMagic[:], blobOff); err != nil {
		return nil, fmt.Errorf("core: reading compiled-blob magic: %w", err)
	}

	mode := LoadModeMmap
	comp, err := compiled.OpenMmapAdvised(path, blobOff, int64(blobLen),
		compiled.MapAdvice{WillNeed: opts.MapWillNeed, Lock: opts.MapLock})
	if errors.Is(err, compiled.ErrMmapUnsupported) {
		mode = LoadModeHeap
		blob := make([]byte, blobLen)
		if _, rerr := f.ReadAt(blob, blobOff); rerr != nil {
			return nil, fmt.Errorf("core: reading compiled section: %w", rerr)
		}
		comp, err = compiled.FromBytes(blob, compiled.ViewCopy)
	}
	if err != nil {
		return nil, fmt.Errorf("core: loading compiled model: %w", err)
	}

	r := &Engine{dict: dict, comp: comp, cfg: DefaultConfig()}
	r.mixLoad = func() (*markov.MVMM, error) {
		defer f.Close() // runs at most once, under the Model() sync.Once
		mix, err := markov.ReadMVMM(io.NewSectionReader(f, mixOff, int64(mixLen)))
		if err != nil {
			return nil, fmt.Errorf("core: lazily loading mixture: %w", err)
		}
		return mix, nil
	}
	keepOpen = true
	r.info = LoadInfo{
		Mode:      mode,
		Version:   version,
		Format:    blobFormat(blobMagic[:]),
		BlobBytes: int64(blobLen),
		MapAdvice: comp.MapAdvice(),
		Duration:  time.Since(start),
	}
	return r, nil
}
