// Package core is the public facade of the reproduction: an end-to-end
// query recommender that consumes raw search logs (or pre-segmented
// sessions), runs the paper's data pipeline (30-minute segmentation,
// aggregation, frequency-threshold reduction), trains the MVMM mixture, and
// serves ranked next-query recommendations online.
//
// Typical usage:
//
//	rec, err := core.TrainFromLog(logFile, core.DefaultConfig())
//	suggestions := rec.Recommend([]string{"nokia n73", "nokia n73 themes"}, 5)
package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/compiled"
	"repro/internal/logfmt"
	"repro/internal/markov"
	"repro/internal/model"
	"repro/internal/query"
	"repro/internal/session"
)

// Config controls training.
type Config struct {
	// SessionGap is the segmentation threshold; 0 applies the paper's
	// 30-minute rule.
	SessionGap time.Duration
	// ReductionThreshold drops aggregated sessions with frequency <= this
	// value (the paper uses 5). Negative disables reduction.
	ReductionThreshold int
	// Epsilons lists the mixture's VMM growth thresholds; nil uses the
	// paper's eleven values {0.0, 0.01, ..., 0.1}.
	Epsilons []float64
	// Mixture tunes σ learning and parallel component training.
	Mixture markov.MVMMOptions
}

// DefaultConfig mirrors the paper's experimental setup.
func DefaultConfig() Config {
	return Config{
		SessionGap:         session.DefaultGap,
		ReductionThreshold: 5,
		Epsilons:           markov.DefaultEpsilons(),
		Mixture:            markov.MVMMOptions{Parallel: true},
	}
}

// Suggestion is one recommended query with its mixture score.
type Suggestion struct {
	Query string
	Score float64
}

// Recommender is a trained end-to-end query recommendation system.
//
// After training (or loading) the mixture is compiled into a flat single-PST
// serving form (internal/compiled): RecommendIDs and Probability run one trie
// descent with zero steady-state allocations instead of walking the K
// map-based component trees. The interpreted mixture is retained as the
// build artifact — evaluation code reads it via Model, and it is what Save
// persists alongside the compiled form. Should compilation ever fail (it
// cannot for mixtures built by this pipeline) the recommender transparently
// serves from the interpreted model instead.
type Recommender struct {
	dict  *query.Dict
	mix   *markov.MVMM
	comp  *compiled.Model // nil ⇒ interpreted fallback
	stats session.Stats
	cfg   Config
}

// predBufs pools prediction scratch for the zero-allocation serving path.
var predBufs = sync.Pool{New: func() any {
	b := make([]model.Prediction, 0, 64)
	return &b
}}

// TrainFromLog reads a raw search log (logfmt records), runs the full
// pipeline and trains the MVMM.
func TrainFromLog(r io.Reader, cfg Config) (*Recommender, error) {
	dict := query.NewDict()
	sessions, err := session.SegmentReader(logfmt.NewReader(r), dict, cfg.SessionGap)
	if err != nil {
		return nil, fmt.Errorf("core: segmenting log: %w", err)
	}
	return TrainFromSessions(dict, sessions, cfg), nil
}

// TrainFromSessions trains from already-segmented sessions whose queries
// were interned into dict.
func TrainFromSessions(dict *query.Dict, sessions []query.Seq, cfg Config) *Recommender {
	agg := session.Aggregate(sessions)
	if cfg.ReductionThreshold >= 0 {
		agg, _ = session.Reduce(agg, uint64(cfg.ReductionThreshold))
	}
	return TrainFromAggregated(dict, agg, cfg)
}

// TrainFromAggregated trains from aggregated (sequence, frequency) sessions.
// No further reduction is applied.
func TrainFromAggregated(dict *query.Dict, agg []query.Session, cfg Config) *Recommender {
	eps := cfg.Epsilons
	if len(eps) == 0 {
		eps = markov.DefaultEpsilons()
	}
	mix := markov.NewMVMMFromEpsilons(agg, eps, dict.Len(), cfg.Mixture)
	r := &Recommender{dict: dict, mix: mix, stats: session.Collect(agg), cfg: cfg}
	r.comp, _ = compiled.Compile(mix)
	return r
}

// Recommend returns up to n ranked query suggestions for the user's context
// — the queries already issued this session, oldest first. Unknown context
// queries are dropped (the MVMM's suffix matching and escape mechanism
// handle the resulting shorter context); an empty or fully unknown context
// yields no suggestions.
//
// A Recommender is immutable once trained or loaded: Recommend, RecommendIDs
// and Probability are safe for any number of concurrent callers without
// locking.
func (r *Recommender) Recommend(context []string, n int) []Suggestion {
	return r.RecommendIDs(r.internContext(context), n)
}

// RecommendIDs is the allocation-lean core of Recommend: it accepts an
// already-interned context (see InternContext / AppendContext) so serving
// layers that cache on context IDs intern exactly once per request, and it
// predicts through the compiled model. The context slice is not retained.
// The returned slice is freshly allocated (result caches retain it); use
// AppendSuggestions to recycle the output buffer too.
func (r *Recommender) RecommendIDs(ctx query.Seq, n int) []Suggestion {
	if len(ctx) == 0 {
		return nil
	}
	out := r.AppendSuggestions(make([]Suggestion, 0, n), ctx, n)
	if len(out) == 0 {
		return nil
	}
	return out
}

// AppendSuggestions appends up to n ranked suggestions for the interned
// context to dst and returns the extended slice. With a recycled dst this is
// the zero-allocation serving path: the compiled model predicts into pooled
// scratch and suggestion strings are shared with the dictionary.
func (r *Recommender) AppendSuggestions(dst []Suggestion, ctx query.Seq, n int) []Suggestion {
	if len(ctx) == 0 {
		return dst
	}
	if r.comp == nil { // interpreted fallback
		for _, p := range r.mix.Predict(ctx, n) {
			dst = append(dst, Suggestion{Query: r.dict.String(p.Query), Score: p.Score})
		}
		return dst
	}
	buf := predBufs.Get().(*[]model.Prediction)
	preds := r.comp.AppendPredictions((*buf)[:0], ctx, n)
	for _, p := range preds {
		dst = append(dst, Suggestion{Query: r.dict.String(p.Query), Score: p.Score})
	}
	*buf = preds[:0]
	predBufs.Put(buf)
	return dst
}

// Probability returns the model's estimate that the user's next query is q
// given the context.
func (r *Recommender) Probability(context []string, q string) float64 {
	ctx := r.internContext(context)
	id, ok := r.dict.Lookup(q)
	if !ok {
		return 0
	}
	if r.comp != nil {
		return r.comp.Prob(ctx, id)
	}
	return r.mix.Prob(ctx, id)
}

// internContext resolves context strings to IDs, dropping unknown queries.
func (r *Recommender) internContext(context []string) query.Seq {
	return r.AppendContext(make(query.Seq, 0, len(context)), context)
}

// InternContext resolves the user's context strings to interned IDs,
// dropping queries unknown to the training vocabulary. The result feeds
// RecommendIDs and is the canonical cache key for a request.
func (r *Recommender) InternContext(context []string) query.Seq {
	return r.internContext(context)
}

// AppendContext is the zero-allocation variant of InternContext: resolved
// IDs are appended to dst (which may be a pooled buffer) and the extended
// slice is returned.
func (r *Recommender) AppendContext(dst query.Seq, context []string) query.Seq {
	for _, q := range context {
		if id, ok := r.dict.Lookup(q); ok {
			dst = append(dst, id)
		}
	}
	return dst
}

// Dict exposes the query dictionary.
func (r *Recommender) Dict() *query.Dict { return r.dict }

// Model exposes the trained mixture (for evaluation and persistence).
func (r *Recommender) Model() *markov.MVMM { return r.mix }

// CompiledModel exposes the flat serving form, or nil when the recommender
// fell back to the interpreted mixture.
func (r *Recommender) CompiledModel() *compiled.Model { return r.comp }

// Stats returns the training-collection statistics (Table IV shape).
func (r *Recommender) Stats() session.Stats { return r.stats }

// Save-format magics. V001 files hold (dictionary, mixture); V002 appends a
// third section with the compiled single-PST serving form so cold starts
// skip recompilation. Load reads both.
const (
	saveMagicV1 = "QRECV001"
	saveMagicV2 = "QRECV002"
)

// writeSection emits one length-prefixed section so Load can hand each
// decoder a bounded reader (decoders buffer internally and would otherwise
// read past their section).
func writeSection(w io.Writer, name string, wt io.WriterTo) error {
	var buf bytes.Buffer
	if wt != nil {
		if _, err := wt.WriteTo(&buf); err != nil {
			return fmt.Errorf("core: saving %s: %w", name, err)
		}
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(buf.Len()))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// Save persists the recommender — dictionary, interpreted mixture (the build
// artifact) and compiled serving form — in the V002 layout. A recommender
// without a compiled model writes an empty third section; Load recompiles.
func (r *Recommender) Save(w io.Writer) error {
	if _, err := io.WriteString(w, saveMagicV2); err != nil {
		return err
	}
	if err := writeSection(w, "dictionary", r.dict); err != nil {
		return err
	}
	if err := writeSection(w, "model", r.mix); err != nil {
		return err
	}
	var comp io.WriterTo
	if r.comp != nil {
		comp = r.comp
	}
	return writeSection(w, "compiled model", comp)
}

// Load restores a recommender written by Save: the current V002 layout or
// the legacy V001 layout (which lacks the compiled section — the serving
// form is then compiled from the mixture on the spot).
func Load(rd io.Reader) (*Recommender, error) {
	magic := make([]byte, len(saveMagicV1))
	if _, err := io.ReadFull(rd, magic); err != nil {
		return nil, fmt.Errorf("core: reading header: %w", err)
	}
	version := string(magic)
	if version != saveMagicV1 && version != saveMagicV2 {
		return nil, fmt.Errorf("core: unrecognised model file header %q", magic)
	}
	section := func(name string) (io.Reader, uint64, error) {
		var hdr [8]byte
		if _, err := io.ReadFull(rd, hdr[:]); err != nil {
			return nil, 0, fmt.Errorf("core: reading %s header: %w", name, err)
		}
		n := binary.LittleEndian.Uint64(hdr[:])
		if n > 1<<40 {
			return nil, 0, fmt.Errorf("core: implausible %s section of %d bytes", name, n)
		}
		return io.LimitReader(rd, int64(n)), n, nil
	}
	ds, _, err := section("dictionary")
	if err != nil {
		return nil, err
	}
	dict, err := query.ReadDict(ds)
	if err != nil {
		return nil, fmt.Errorf("core: loading dictionary: %w", err)
	}
	ms, _, err := section("model")
	if err != nil {
		return nil, err
	}
	mix, err := markov.ReadMVMM(ms)
	if err != nil {
		return nil, fmt.Errorf("core: loading model: %w", err)
	}
	r := &Recommender{dict: dict, mix: mix, cfg: DefaultConfig()}
	if version == saveMagicV2 {
		cs, n, err := section("compiled model")
		if err != nil {
			return nil, err
		}
		if n > 0 {
			comp, err := compiled.Read(cs)
			if err != nil {
				return nil, fmt.Errorf("core: loading compiled model: %w", err)
			}
			r.comp = comp
			return r, nil
		}
	}
	r.comp, _ = compiled.Compile(mix)
	return r, nil
}
