// Package core is the public facade of the reproduction: an end-to-end
// query recommender that consumes raw search logs (or pre-segmented
// sessions), runs the paper's data pipeline (30-minute segmentation,
// aggregation, frequency-threshold reduction), trains the MVMM mixture, and
// serves ranked next-query recommendations online.
//
// Typical usage:
//
//	rec, err := core.TrainFromLog(logFile, core.DefaultConfig())
//	suggestions := rec.Recommend([]string{"nokia n73", "nokia n73 themes"}, 5)
package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"repro/internal/logfmt"
	"repro/internal/markov"
	"repro/internal/query"
	"repro/internal/session"
)

// Config controls training.
type Config struct {
	// SessionGap is the segmentation threshold; 0 applies the paper's
	// 30-minute rule.
	SessionGap time.Duration
	// ReductionThreshold drops aggregated sessions with frequency <= this
	// value (the paper uses 5). Negative disables reduction.
	ReductionThreshold int
	// Epsilons lists the mixture's VMM growth thresholds; nil uses the
	// paper's eleven values {0.0, 0.01, ..., 0.1}.
	Epsilons []float64
	// Mixture tunes σ learning and parallel component training.
	Mixture markov.MVMMOptions
}

// DefaultConfig mirrors the paper's experimental setup.
func DefaultConfig() Config {
	return Config{
		SessionGap:         session.DefaultGap,
		ReductionThreshold: 5,
		Epsilons:           markov.DefaultEpsilons(),
		Mixture:            markov.MVMMOptions{Parallel: true},
	}
}

// Suggestion is one recommended query with its mixture score.
type Suggestion struct {
	Query string
	Score float64
}

// Recommender is a trained end-to-end query recommendation system.
type Recommender struct {
	dict  *query.Dict
	mix   *markov.MVMM
	stats session.Stats
	cfg   Config
}

// TrainFromLog reads a raw search log (logfmt records), runs the full
// pipeline and trains the MVMM.
func TrainFromLog(r io.Reader, cfg Config) (*Recommender, error) {
	dict := query.NewDict()
	sessions, err := session.SegmentReader(logfmt.NewReader(r), dict, cfg.SessionGap)
	if err != nil {
		return nil, fmt.Errorf("core: segmenting log: %w", err)
	}
	return TrainFromSessions(dict, sessions, cfg), nil
}

// TrainFromSessions trains from already-segmented sessions whose queries
// were interned into dict.
func TrainFromSessions(dict *query.Dict, sessions []query.Seq, cfg Config) *Recommender {
	agg := session.Aggregate(sessions)
	if cfg.ReductionThreshold >= 0 {
		agg, _ = session.Reduce(agg, uint64(cfg.ReductionThreshold))
	}
	return TrainFromAggregated(dict, agg, cfg)
}

// TrainFromAggregated trains from aggregated (sequence, frequency) sessions.
// No further reduction is applied.
func TrainFromAggregated(dict *query.Dict, agg []query.Session, cfg Config) *Recommender {
	eps := cfg.Epsilons
	if len(eps) == 0 {
		eps = markov.DefaultEpsilons()
	}
	mix := markov.NewMVMMFromEpsilons(agg, eps, dict.Len(), cfg.Mixture)
	return &Recommender{dict: dict, mix: mix, stats: session.Collect(agg), cfg: cfg}
}

// Recommend returns up to n ranked query suggestions for the user's context
// — the queries already issued this session, oldest first. Unknown context
// queries are dropped (the MVMM's suffix matching and escape mechanism
// handle the resulting shorter context); an empty or fully unknown context
// yields no suggestions.
//
// A Recommender is immutable once trained or loaded: Recommend, RecommendIDs
// and Probability are safe for any number of concurrent callers without
// locking.
func (r *Recommender) Recommend(context []string, n int) []Suggestion {
	return r.RecommendIDs(r.internContext(context), n)
}

// RecommendIDs is the allocation-lean core of Recommend: it accepts an
// already-interned context (see InternContext / AppendContext) so serving
// layers that cache on context IDs intern exactly once per request. The
// context slice is not retained.
func (r *Recommender) RecommendIDs(ctx query.Seq, n int) []Suggestion {
	if len(ctx) == 0 {
		return nil
	}
	preds := r.mix.Predict(ctx, n)
	if len(preds) == 0 {
		return nil
	}
	out := make([]Suggestion, len(preds))
	for i, p := range preds {
		out[i] = Suggestion{Query: r.dict.String(p.Query), Score: p.Score}
	}
	return out
}

// Probability returns the model's estimate that the user's next query is q
// given the context.
func (r *Recommender) Probability(context []string, q string) float64 {
	ctx := r.internContext(context)
	id, ok := r.dict.Lookup(q)
	if !ok {
		return 0
	}
	return r.mix.Prob(ctx, id)
}

// internContext resolves context strings to IDs, dropping unknown queries.
func (r *Recommender) internContext(context []string) query.Seq {
	return r.AppendContext(make(query.Seq, 0, len(context)), context)
}

// InternContext resolves the user's context strings to interned IDs,
// dropping queries unknown to the training vocabulary. The result feeds
// RecommendIDs and is the canonical cache key for a request.
func (r *Recommender) InternContext(context []string) query.Seq {
	return r.internContext(context)
}

// AppendContext is the zero-allocation variant of InternContext: resolved
// IDs are appended to dst (which may be a pooled buffer) and the extended
// slice is returned.
func (r *Recommender) AppendContext(dst query.Seq, context []string) query.Seq {
	for _, q := range context {
		if id, ok := r.dict.Lookup(q); ok {
			dst = append(dst, id)
		}
	}
	return dst
}

// Dict exposes the query dictionary.
func (r *Recommender) Dict() *query.Dict { return r.dict }

// Model exposes the trained mixture (for evaluation and persistence).
func (r *Recommender) Model() *markov.MVMM { return r.mix }

// Stats returns the training-collection statistics (Table IV shape).
func (r *Recommender) Stats() session.Stats { return r.stats }

const saveMagicV1 = "QRECV001"

// Save persists the recommender (dictionary + mixture) to w. Each section
// is length-prefixed so Load can hand each decoder a bounded reader
// (decoders buffer internally and would otherwise read past their section).
func (r *Recommender) Save(w io.Writer) error {
	if _, err := io.WriteString(w, saveMagicV1); err != nil {
		return err
	}
	writeSection := func(name string, wt io.WriterTo) error {
		var buf bytes.Buffer
		if _, err := wt.WriteTo(&buf); err != nil {
			return fmt.Errorf("core: saving %s: %w", name, err)
		}
		var hdr [8]byte
		binary.LittleEndian.PutUint64(hdr[:], uint64(buf.Len()))
		if _, err := w.Write(hdr[:]); err != nil {
			return err
		}
		_, err := w.Write(buf.Bytes())
		return err
	}
	if err := writeSection("dictionary", r.dict); err != nil {
		return err
	}
	return writeSection("model", r.mix)
}

// Load restores a recommender written by Save.
func Load(rd io.Reader) (*Recommender, error) {
	magic := make([]byte, len(saveMagicV1))
	if _, err := io.ReadFull(rd, magic); err != nil {
		return nil, fmt.Errorf("core: reading header: %w", err)
	}
	if string(magic) != saveMagicV1 {
		return nil, fmt.Errorf("core: unrecognised model file header %q", magic)
	}
	section := func(name string) (io.Reader, error) {
		var hdr [8]byte
		if _, err := io.ReadFull(rd, hdr[:]); err != nil {
			return nil, fmt.Errorf("core: reading %s header: %w", name, err)
		}
		n := binary.LittleEndian.Uint64(hdr[:])
		if n > 1<<40 {
			return nil, fmt.Errorf("core: implausible %s section of %d bytes", name, n)
		}
		return io.LimitReader(rd, int64(n)), nil
	}
	ds, err := section("dictionary")
	if err != nil {
		return nil, err
	}
	dict, err := query.ReadDict(ds)
	if err != nil {
		return nil, fmt.Errorf("core: loading dictionary: %w", err)
	}
	ms, err := section("model")
	if err != nil {
		return nil, err
	}
	mix, err := markov.ReadMVMM(ms)
	if err != nil {
		return nil, fmt.Errorf("core: loading model: %w", err)
	}
	return &Recommender{dict: dict, mix: mix, cfg: DefaultConfig()}, nil
}
