package core

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/compiled"
	"repro/internal/query"
)

func assertSameRecommendations(t *testing.T, label string, a, b *Engine) {
	t.Helper()
	for _, ctx := range [][]string{
		{"nokia n73"}, {"kidney stones"},
		{"nokia n73", "nokia n73 themes"}, {"unknown", "nokia n73"},
	} {
		x, y := Recommend(a, ctx, 5), Recommend(b, ctx, 5)
		if len(x) != len(y) {
			t.Fatalf("%s: ctx %v: %d vs %d suggestions", label, ctx, len(x), len(y))
		}
		for i := range x {
			if x[i] != y[i] {
				t.Fatalf("%s: ctx %v rank %d: %+v vs %+v", label, ctx, i, x[i], y[i])
			}
		}
	}
}

// TestSaveAsV3AndLoadRestores: the exact V003 format remains writable
// behind SaveAs and the reader-based Load restores it bit-identically (heap
// decode of the flat compiled section).
func TestSaveAsV3AndLoadRestores(t *testing.T) {
	rec, err := TrainFromLog(strings.NewReader(buildLog(t)), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.SaveAs(&buf, saveMagicV3); err != nil {
		t.Fatal(err)
	}
	if got := buf.String()[:len(saveMagicV3)]; got != saveMagicV3 {
		t.Fatalf("header = %q, want %q", got, saveMagicV3)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.CompiledModel() == nil {
		t.Fatal("V003 load did not restore the compiled model")
	}
	if li := loaded.LoadInfo(); li.Mode != LoadModeHeap || li.Version != saveMagicV3 ||
		li.Format != "CPS3" || li.BlobBytes <= 0 {
		t.Fatalf("LoadInfo = %+v", li)
	}
	assertSameRecommendations(t, "stream", rec, loaded)
}

// TestV2ToV3RoundTrip: a model saved as V002, loaded, re-saved as V003 and
// reloaded must keep serving identical recommendations — the format upgrade
// path every existing model file will take.
func TestV2ToV3RoundTrip(t *testing.T) {
	rec, err := TrainFromLog(strings.NewReader(buildLog(t)), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var v2 bytes.Buffer
	if err := rec.SaveAs(&v2, saveMagicV2); err != nil {
		t.Fatal(err)
	}
	fromV2, err := Load(bytes.NewReader(v2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if li := fromV2.LoadInfo(); li.Version != saveMagicV2 || li.Format != "CPS1" {
		t.Fatalf("LoadInfo = %+v", li)
	}
	var v3 bytes.Buffer
	if err := fromV2.SaveAs(&v3, saveMagicV3); err != nil {
		t.Fatal(err)
	}
	fromV3, err := Load(bytes.NewReader(v3.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	assertSameRecommendations(t, "v2", rec, fromV2)
	assertSameRecommendations(t, "v2->v3", rec, fromV3)
}

// TestLoadPathMmap: LoadPath on a V003 file must take the mmap route, serve
// identical recommendations, lazily expose the mixture, and survive Save.
func TestLoadPathMmap(t *testing.T) {
	rec, err := TrainFromLog(strings.NewReader(buildLog(t)), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.SaveAs(f, saveMagicV3); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	loaded, err := LoadPath(path)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	li := loaded.LoadInfo()
	wantMode := LoadModeMmap
	if _, merr := compiled.OpenMmap(path, 0, 1); merr == compiled.ErrMmapUnsupported {
		wantMode = LoadModeHeap
	}
	if li.Mode != wantMode || li.Version != saveMagicV3 || li.Format != "CPS3" ||
		li.BlobBytes <= 0 || li.Duration <= 0 {
		t.Fatalf("LoadInfo = %+v, want mode %q", li, wantMode)
	}
	if loaded.CompiledModel() == nil {
		t.Fatal("LoadPath did not produce a compiled model")
	}
	assertSameRecommendations(t, "mmap", rec, loaded)

	// The mixture decodes lazily and matches the original.
	mix := loaded.Model()
	if mix == nil {
		t.Fatal("lazy mixture load failed")
	}
	if got, want := len(mix.Components()), len(rec.Model().Components()); got != want {
		t.Fatalf("lazy mixture has %d components, want %d", got, want)
	}
	// Saving a LoadPath'd recommender round-trips through the lazy mixture.
	var buf bytes.Buffer
	if err := loaded.SaveAs(&buf, saveMagicV3); err != nil {
		t.Fatal(err)
	}
	again, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	assertSameRecommendations(t, "resave", rec, again)
}

// TestLoadPathFallsBackForOldVersions: V001 and V002 files load through the
// heap path with correct provenance.
func TestLoadPathFallsBackForOldVersions(t *testing.T) {
	rec, err := TrainFromLog(strings.NewReader(buildLog(t)), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	v1 := filepath.Join(dir, "v1.bin")
	if err := os.WriteFile(v1, writeV1(t, rec), 0o644); err != nil {
		t.Fatal(err)
	}
	var v2buf bytes.Buffer
	if err := rec.SaveAs(&v2buf, saveMagicV2); err != nil {
		t.Fatal(err)
	}
	v2 := filepath.Join(dir, "v2.bin")
	if err := os.WriteFile(v2, v2buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	for path, version := range map[string]string{v1: saveMagicV1, v2: saveMagicV2} {
		loaded, err := LoadPath(path)
		if err != nil {
			t.Fatalf("%s: %v", version, err)
		}
		if li := loaded.LoadInfo(); li.Mode != LoadModeHeap || li.Version != version {
			t.Fatalf("%s: LoadInfo = %+v", version, li)
		}
		assertSameRecommendations(t, version, rec, loaded)
	}
}

// TestLoadRejectsTruncatedFlat: cutting a flat-container model file (the
// V004 default here; V003 shares the framing) anywhere in the compiled
// section must fail loudly on both load paths, never panic or SIGBUS.
func TestLoadRejectsTruncatedFlat(t *testing.T) {
	rec, err := TrainFromLog(strings.NewReader(buildLog(t)), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	dir := t.TempDir()
	for i, n := range []int{len(good) - 1, len(good) - 4097, len(good) - len(good)/4} {
		if n <= len(saveMagicV3) {
			continue
		}
		if _, err := Load(bytes.NewReader(good[:n])); err == nil {
			t.Fatalf("stream load of %d/%d bytes went undetected", n, len(good))
		}
		path := filepath.Join(dir, "trunc"+string(rune('a'+i))+".bin")
		if err := os.WriteFile(path, good[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadPath(path); err == nil {
			t.Fatalf("path load of %d/%d bytes went undetected", n, len(good))
		}
	}
}

// TestRecommendBatchIDsMatchesSingle: the batched core API must agree with
// per-context RecommendIDs, including nil results for uncovered contexts.
func TestRecommendBatchIDsMatchesSingle(t *testing.T) {
	rec, err := TrainFromLog(strings.NewReader(buildLog(t)), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctxs := []query.Seq{
		InternContext(rec.Dict(), []string{"nokia n73"}),
		InternContext(rec.Dict(), []string{"kidney stones"}),
		nil, // empty context
		InternContext(rec.Dict(), []string{"nokia n73", "nokia n73 themes"}),
	}
	ns := []int{5, 3, 5, 1}
	got := rec.RecommendBatchIDs(ctxs, ns)
	if len(got) != len(ctxs) {
		t.Fatalf("batch returned %d results for %d contexts", len(got), len(ctxs))
	}
	for i := range ctxs {
		want := RecommendIDs(rec, ctxs[i], ns[i])
		if len(got[i]) != len(want) {
			t.Fatalf("ctx %d: batch %d suggestions, single %d", i, len(got[i]), len(want))
		}
		for j := range want {
			if got[i][j] != want[j] {
				t.Fatalf("ctx %d rank %d: batch %+v, single %+v", i, j, got[i][j], want[j])
			}
		}
	}
}

// TestLoadPathLazyMixturePinsInode: replacing the model file on disk after
// LoadPath must not corrupt the lazy mixture load — Model() reads through
// the retained descriptor, so it decodes the file the compiled form was
// mapped from, not whatever now lives at the path.
func TestLoadPathLazyMixturePinsInode(t *testing.T) {
	rec, err := TrainFromLog(strings.NewReader(buildLog(t)), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.bin")
	var buf bytes.Buffer
	if err := rec.SaveAs(&buf, saveMagicV3); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPath(path)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	// A deploy replaces the file (rename-over semantics: the original inode
	// stays alive for existing opens) before Model() is first called.
	other := altModelBytes(t)
	tmp := path + ".new"
	if err := os.WriteFile(tmp, other, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, path); err != nil {
		t.Fatal(err)
	}
	mix := loaded.Model()
	if mix == nil {
		t.Fatal("lazy mixture load failed after file replacement")
	}
	if got, want := len(mix.Components()), len(rec.Model().Components()); got != want {
		t.Fatalf("lazy mixture has %d components, want %d (read the replacement file?)", got, want)
	}
	assertSameRecommendations(t, "pinned", rec, loaded)
}

// altModelBytes builds a structurally different model file to rename over
// the original.
func altModelBytes(t *testing.T) []byte {
	t.Helper()
	d := query.NewDict()
	a, b := d.Intern("smtp"), d.Intern("pop3")
	var sessions []query.Seq
	for i := 0; i < 10; i++ {
		sessions = append(sessions, query.Seq{a, b})
	}
	alt := TrainFromSessions(d, sessions, smallConfig())
	var buf bytes.Buffer
	if err := alt.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestLoadPathWithMapAdvice: paging hints requested through LoadOptions must
// surface in LoadInfo (applied or recorded-degraded) on the mmap route, and
// plain LoadPath must report none.
func TestLoadPathWithMapAdvice(t *testing.T) {
	rec, err := TrainFromLog(strings.NewReader(buildLog(t)), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.SaveAs(f, saveMagicV3); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	plain, err := LoadPath(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := plain.LoadInfo().MapAdvice; got != "" {
		t.Fatalf("plain LoadPath reports advice %q", got)
	}
	plain.Close()

	loaded, err := LoadPathWith(path, LoadOptions{MapWillNeed: true})
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	li := loaded.LoadInfo()
	if li.Mode != LoadModeMmap {
		t.Skipf("no mmap on this platform (mode %s)", li.Mode)
	}
	if !strings.HasPrefix(li.MapAdvice, "willneed") {
		t.Fatalf("LoadInfo.MapAdvice = %q, want willneed accounted for", li.MapAdvice)
	}
	assertSameRecommendations(t, "advised", rec, loaded)
}
