package core

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/compiled"
)

// TestSaveWritesV5AndLoadRestores: the default save format is V005 (the
// compact CPS5 compiled section) and the reader-based Load restores it
// within the same bounded-error contract as CPS4 — the uint16 tier reuses
// CPS4's quantisation grid exactly.
func TestSaveWritesV5AndLoadRestores(t *testing.T) {
	rec, err := TrainFromLog(strings.NewReader(buildLog(t)), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String()[:len(saveMagicV5)]; got != saveMagicV5 {
		t.Fatalf("header = %q, want %q", got, saveMagicV5)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	cm := loaded.CompiledModel()
	if cm == nil || !cm.Quantised() {
		t.Fatalf("V005 load did not restore a quantised compiled model (%v)", cm)
	}
	if li := loaded.LoadInfo(); li.Mode != LoadModeHeap || li.Version != saveMagicV5 ||
		li.Format != "CPS5" || li.BlobBytes <= 0 {
		t.Fatalf("LoadInfo = %+v", li)
	}
	assertCloseRecommendations(t, "stream", rec, loaded)
}

// TestLoadPathMmapV5: LoadPath on a V005 file must take the mmap route,
// report the CPS5 blob it mapped, serve within the quantisation bound, and
// still expose the mixture lazily so exact formats can be re-saved.
func TestLoadPathMmapV5(t *testing.T) {
	rec, err := TrainFromLog(strings.NewReader(buildLog(t)), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	loaded, err := LoadPath(path)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	li := loaded.LoadInfo()
	wantMode := LoadModeMmap
	if _, merr := compiled.OpenMmap(path, 0, 1); merr == compiled.ErrMmapUnsupported {
		wantMode = LoadModeHeap
	}
	if li.Mode != wantMode || li.Version != saveMagicV5 || li.Format != "CPS5" ||
		li.BlobBytes <= 0 || li.Duration <= 0 {
		t.Fatalf("LoadInfo = %+v, want mode %q format CPS5", li, wantMode)
	}
	cm := loaded.CompiledModel()
	if cm == nil || !cm.Quantised() {
		t.Fatal("V005 LoadPath did not produce a quantised compiled model")
	}
	assertCloseRecommendations(t, "mmap", rec, loaded)
}

// TestV5BlobSmallerThanV4: the CPS5 blob must undercut CPS4 even on this
// toy model. The cps5-over-cps4 <= 0.8 claim on the benchmark serving model
// is gated in BENCH_serving.json (BenchmarkCompiledBlobSizeV5).
func TestV5BlobSmallerThanV4(t *testing.T) {
	rec, err := TrainFromLog(strings.NewReader(buildLog(t)), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	cm := rec.CompiledModel()
	if cm == nil {
		t.Fatal("no compiled model")
	}
	cps4, cps5 := cm.Flat4Size(), cm.Flat5Size(false)
	if cps5 >= cps4 {
		t.Fatalf("CPS5 blob %d bytes >= CPS4 blob %d bytes", cps5, cps4)
	}
}

// TestCompactSaveAsRecompilesExactForms: a recommender serving from a
// compact CPS5 load (whose raw counts are gone) must still write exact
// V002/V003 files by recompiling from the lazily decoded mixture, and a
// V005 re-save must be stable under reload.
func TestCompactSaveAsRecompilesExactForms(t *testing.T) {
	rec, err := TrainFromLog(strings.NewReader(buildLog(t)), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var v5 bytes.Buffer
	if err := rec.Save(&v5); err != nil {
		t.Fatal(err)
	}
	compactRec, err := Load(bytes.NewReader(v5.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if cm := compactRec.CompiledModel(); cm == nil || !cm.Quantised() {
		t.Fatal("V005 load is not quantised")
	}
	for _, version := range []string{saveMagicV2, saveMagicV3} {
		var buf bytes.Buffer
		if err := compactRec.SaveAs(&buf, version); err != nil {
			t.Fatalf("SaveAs(%s) from compact model: %v", version, err)
		}
		exact, err := Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("loading %s written from compact model: %v", version, err)
		}
		if cm := exact.CompiledModel(); cm == nil || !cm.Exact() {
			t.Fatalf("%s round trip did not restore an exact compiled model", version)
		}
		assertSameRecommendations(t, version+"-from-compact", rec, exact)
	}
	// A V005 re-save of the compact model re-emits the stored fixed-point
	// values and packed IDs verbatim: the compiled sections must be
	// byte-identical across the round trip.
	var again bytes.Buffer
	if err := compactRec.Save(&again); err != nil {
		t.Fatal(err)
	}
	reload, err := Load(bytes.NewReader(again.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	assertCloseRecommendations(t, "v5-resave", rec, reload)
}
