// Incremental training: the in-memory count store behind the streaming
// ingestion loop (internal/stream). An Incremental accumulates completed
// sessions as (sequence, frequency) counts over a dictionary that only ever
// grows from a fixed base vocabulary, and can at any point be snapshotted
// into a fully trained, compiled Engine whose dictionary ID-preservingly
// extends the base — the property the fleet's dict-compatibility check
// requires for a challenger to be hot-loaded next to the champion.
package core

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"sync"

	"repro/internal/query"
	"repro/internal/session"
)

// Incremental accumulates session counts for repeated background retraining.
//
// Sessions are added as query strings, not IDs, and interned in arrival
// order: two Incrementals fed the same session stream in the same order build
// byte-identical dictionaries and counts, which is what makes crash replay
// (re-applying a write-log) reproduce the exact pre-crash state.
//
// All methods are safe for concurrent use; Snapshot trains outside the lock
// so ingestion continues while a recompile runs in the background.
type Incremental struct {
	mu       sync.Mutex
	dict     *query.Dict
	counts   map[string]uint64 // Seq.Key() -> aggregated frequency
	cfg      Config
	sessions uint64 // total sessions ever added
}

// NewIncremental returns an Incremental whose dictionary starts as baseVocab
// interned in slice order — pass the champion model's Dict().Strings() so
// every snapshot's dictionary extends the champion's.
func NewIncremental(baseVocab []string, cfg Config) *Incremental {
	inc := &Incremental{dict: query.NewDict(), counts: make(map[string]uint64), cfg: cfg}
	for _, q := range baseVocab {
		inc.dict.Intern(q)
	}
	return inc
}

// AddStrings applies one batch of completed sessions, interning queries in
// the given order. Empty sessions are ignored.
func (inc *Incremental) AddStrings(sessions [][]string) {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	for _, qs := range sessions {
		if len(qs) == 0 {
			continue
		}
		seq := make(query.Seq, len(qs))
		for i, q := range qs {
			seq[i] = inc.dict.Intern(q)
		}
		inc.counts[seq.Key()]++
		inc.sessions++
	}
}

// Sessions reports the total number of sessions added since creation.
func (inc *Incremental) Sessions() uint64 {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	return inc.sessions
}

// VocabSize reports the current dictionary size.
func (inc *Incremental) VocabSize() int {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	return inc.dict.Len()
}

// clone captures an isolated (dict, aggregated-sessions) pair under the lock.
func (inc *Incremental) clone() (*query.Dict, []query.Session) {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	dict := query.NewDict()
	for _, q := range inc.dict.Strings() {
		dict.Intern(q) // stored strings are already normalised: IDs preserved
	}
	agg := make([]query.Session, 0, len(inc.counts))
	for k, c := range inc.counts {
		agg = append(agg, query.Session{Queries: query.SeqFromKey(k), Count: c})
	}
	query.SortSessions(agg)
	return dict, agg
}

// Snapshot trains a fresh Engine from the current counts. The returned
// engine owns a cloned dictionary, so ingestion may continue concurrently;
// the clone ID-preservingly extends both the base vocabulary and every
// earlier snapshot's dictionary. Reduction follows cfg.ReductionThreshold
// exactly as offline training does.
func (inc *Incremental) Snapshot() *Engine {
	dict, agg := inc.clone()
	if inc.cfg.ReductionThreshold >= 0 {
		agg, _ = session.Reduce(agg, uint64(inc.cfg.ReductionThreshold))
	}
	return TrainFromAggregated(dict, agg, inc.cfg)
}

// SnapshotTo trains a snapshot and atomically persists it at path (tmp file
// + rename, so a reader never observes a torn model file). The save format
// is the package default (currently V005/CPS5).
func (inc *Incremental) SnapshotTo(path string) (*Engine, error) {
	eng := inc.Snapshot()
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return nil, fmt.Errorf("core: snapshot: %w", err)
	}
	if err := eng.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, fmt.Errorf("core: snapshot save: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return nil, fmt.Errorf("core: snapshot close: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return nil, fmt.Errorf("core: snapshot rename: %w", err)
	}
	return eng, nil
}

// DumpCounts writes the count table in a canonical text form — one line per
// aggregated session, quoted queries tab-joined, then the frequency — sorted
// bytewise. Two stores with identical state produce byte-identical dumps;
// the crash-replay tests diff these to prove no session was lost or
// double-counted.
func (inc *Incremental) DumpCounts(w io.Writer) error {
	dict, agg := inc.clone()
	lines := make([]string, 0, len(agg))
	for _, s := range agg {
		var b []byte
		for i, id := range s.Queries {
			if i > 0 {
				b = append(b, '\t')
			}
			b = strconv.AppendQuote(b, dict.String(id))
		}
		b = append(b, '\t', '#')
		b = strconv.AppendUint(b, s.Count, 10)
		lines = append(lines, string(b))
	}
	sort.Strings(lines)
	bw := bufio.NewWriter(w)
	for _, l := range lines {
		bw.WriteString(l)
		bw.WriteByte('\n')
	}
	return bw.Flush()
}
