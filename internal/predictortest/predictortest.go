// Package predictortest is the executable specification of the
// compiled.Predictor contract. Every model family that plugs into the
// serving stack — the compiled MVMM trie, the HMM, the cluster recommender,
// the pairwise baselines — runs the same conformance suite, so "implements
// Predictor" means one verified thing rather than four ad-hoc ones.
//
// Usage, from a family's own test file:
//
//	predictortest.Run(t, p, ctxs)
//
// where ctxs are contexts the model is expected to cover. The suite checks
// determinism, ranking discipline (descending scores, no duplicate IDs,
// topN respected, smaller topN is a prefix of larger), Prob consistency with
// PredictInto, dst append semantics, and — when Shape advertises ZeroAlloc —
// that PredictInto performs no steady-state allocations.
package predictortest

import (
	"testing"

	"repro/internal/compiled"
	"repro/internal/model"
	"repro/internal/query"
)

// Run exercises the full Predictor contract against p. ctxs must contain at
// least one context the model covers (PredictInto returns predictions for
// it); uncovered contexts are allowed and exercise the empty-answer path.
func Run(t *testing.T, p compiled.Predictor, ctxs []query.Seq) {
	t.Helper()
	shape := p.Shape()
	t.Run("shape", func(t *testing.T) { checkShape(t, shape) })
	t.Run("empty-context", func(t *testing.T) {
		if got := p.PredictInto(nil, nil, 5); len(got) != 0 {
			t.Errorf("PredictInto(nil ctx) returned %d predictions, want 0", len(got))
		}
	})
	covered := 0
	for _, ctx := range ctxs {
		if len(p.PredictInto(nil, ctx, 5)) > 0 {
			covered++
		}
	}
	if covered == 0 {
		t.Fatalf("no covered context among the %d provided: the suite needs at least one non-empty answer", len(ctxs))
	}
	t.Run("ranking", func(t *testing.T) { checkRanking(t, p, ctxs) })
	t.Run("determinism", func(t *testing.T) { checkDeterminism(t, p, ctxs) })
	t.Run("append-semantics", func(t *testing.T) { checkAppend(t, p, ctxs) })
	t.Run("prob", func(t *testing.T) { checkProb(t, p, ctxs) })
	t.Run("batch", func(t *testing.T) { checkBatch(t, p, ctxs) })
	if shape.ZeroAlloc {
		t.Run("zero-alloc", func(t *testing.T) { checkZeroAlloc(t, p, ctxs) })
	}
}

func checkShape(t *testing.T, s compiled.Shape) {
	t.Helper()
	switch s.Family {
	case compiled.FamilyMVMM, compiled.FamilyHMM, compiled.FamilyCluster,
		compiled.FamilyAdjacency, compiled.FamilyCooccurrence:
	default:
		t.Errorf("Shape().Family = %q, not a stable family identifier", s.Family)
	}
	if s.Label == "" {
		t.Error("Shape().Label is empty")
	}
	if s.Vocab <= 0 {
		t.Errorf("Shape().Vocab = %d, want > 0", s.Vocab)
	}
	if s.States < 0 || s.Depth < 0 {
		t.Errorf("negative geometry: states=%d depth=%d", s.States, s.Depth)
	}
}

// checkRanking verifies the per-call ranking discipline on every context:
// at most topN results, descending scores, no duplicate query IDs, every
// score positive, and the topN=k answer a prefix of the topN=k+2 answer.
func checkRanking(t *testing.T, p compiled.Predictor, ctxs []query.Seq) {
	t.Helper()
	for _, ctx := range ctxs {
		small := p.PredictInto(nil, ctx, 3)
		large := p.PredictInto(nil, ctx, 5)
		if len(small) > 3 || len(large) > 5 {
			t.Fatalf("ctx %v: more predictions than topN (%d > 3 or %d > 5)", ctx, len(small), len(large))
		}
		if len(large) < len(small) {
			t.Fatalf("ctx %v: larger topN returned fewer predictions (%d < %d)", ctx, len(large), len(small))
		}
		for i, pr := range small {
			if pr != large[i] {
				t.Fatalf("ctx %v: topN=3 answer is not a prefix of topN=5 (index %d: %+v vs %+v)", ctx, i, pr, large[i])
			}
		}
		seen := make(map[query.ID]bool, len(large))
		for i, pr := range large {
			if pr.Score <= 0 {
				t.Fatalf("ctx %v: non-positive score %v at rank %d", ctx, pr.Score, i)
			}
			if i > 0 && large[i-1].Score < pr.Score {
				t.Fatalf("ctx %v: scores not descending at rank %d (%v < %v)", ctx, i, large[i-1].Score, pr.Score)
			}
			if seen[pr.Query] {
				t.Fatalf("ctx %v: duplicate query %d in one answer", ctx, pr.Query)
			}
			seen[pr.Query] = true
		}
	}
}

func checkDeterminism(t *testing.T, p compiled.Predictor, ctxs []query.Seq) {
	t.Helper()
	for _, ctx := range ctxs {
		a := p.PredictInto(nil, ctx, 5)
		b := p.PredictInto(nil, ctx, 5)
		if len(a) != len(b) {
			t.Fatalf("ctx %v: non-deterministic answer length %d vs %d", ctx, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("ctx %v: non-deterministic rank %d: %+v vs %+v", ctx, i, a[i], b[i])
			}
		}
	}
}

// checkAppend verifies PredictInto appends: pre-existing dst elements
// survive, and a recycled dst produces the same answer as a nil one.
func checkAppend(t *testing.T, p compiled.Predictor, ctxs []query.Seq) {
	t.Helper()
	sentinel := model.Prediction{Query: 1<<31 - 1, Score: -1}
	buf := make([]model.Prediction, 0, 64)
	for _, ctx := range ctxs {
		want := p.PredictInto(nil, ctx, 5)
		got := p.PredictInto(append(buf[:0], sentinel), ctx, 5)
		if len(got) != len(want)+1 || got[0] != sentinel {
			t.Fatalf("ctx %v: PredictInto did not append (len %d, want %d; head %+v)", ctx, len(got), len(want)+1, got[0])
		}
		for i, pr := range got[1:] {
			if pr != want[i] {
				t.Fatalf("ctx %v: recycled-dst answer diverges at rank %d: %+v vs %+v", ctx, i, pr, want[i])
			}
		}
	}
}

// checkProb verifies Prob agrees with PredictInto: every predicted query has
// positive probability under the same context, and the top prediction's
// probability is no smaller than the bottom one's.
func checkProb(t *testing.T, p compiled.Predictor, ctxs []query.Seq) {
	t.Helper()
	for _, ctx := range ctxs {
		preds := p.PredictInto(nil, ctx, 5)
		for _, pr := range preds {
			pb := p.Prob(ctx, pr.Query)
			if pb <= 0 {
				t.Fatalf("ctx %v: predicted query %d has Prob %v, want > 0", ctx, pr.Query, pb)
			}
			if pb > 1+1e-9 {
				t.Fatalf("ctx %v: Prob(%d) = %v > 1", ctx, pr.Query, pb)
			}
		}
	}
	if got := p.Prob(nil, 0); got != 0 {
		t.Errorf("Prob(empty ctx) = %v, want 0", got)
	}
}

// checkZeroAlloc holds implementations to the advertised ZeroAlloc contract:
// with a recycled, pre-sized dst, steady-state PredictInto allocates nothing.
func checkZeroAlloc(t *testing.T, p compiled.Predictor, ctxs []query.Seq) {
	t.Helper()
	if raceEnabled {
		t.Skip("allocation counts are meaningless under the race detector")
	}
	dst := make([]model.Prediction, 0, 64)
	// Warm pooled scratch before measuring.
	for _, ctx := range ctxs {
		dst = p.PredictInto(dst[:0], ctx, 5)
	}
	allocs := testing.AllocsPerRun(100, func() {
		for _, ctx := range ctxs {
			dst = p.PredictInto(dst[:0], ctx, 5)
		}
	})
	if allocs != 0 {
		t.Errorf("PredictInto allocates %.1f times per run despite Shape().ZeroAlloc", allocs)
	}
}
