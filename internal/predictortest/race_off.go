//go:build !race

package predictortest

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = false
