package predictortest

import (
	"sync"
	"testing"

	"repro/internal/compiled"
	"repro/internal/model"
	"repro/internal/query"
)

// batchPredictor is the optional batched entry point some families expose
// (the compiled MVMM trie). emit is invoked exactly once per context index;
// preds is only valid for the duration of the call.
type batchPredictor interface {
	PredictBatch(ctxs []query.Seq, ns []int, emit func(i int, preds []model.Prediction))
}

// parallelBatchPredictor is the worker-fanned variant: answers must be
// bit-identical to the sequential batch for every worker count.
type parallelBatchPredictor interface {
	PredictBatchParallel(ctxs []query.Seq, ns []int, workers int, emit func(i int, preds []model.Prediction))
}

// checkBatch verifies batched prediction against the one-context-at-a-time
// baseline. Every family runs the replay check (a second sequential pass
// over a batch-shaped workload matches the first); families exposing
// PredictBatch / PredictBatchParallel must additionally emit exactly once
// per index with answers bit-identical to PredictInto — under every worker
// count, since parallel descent promises byte-for-byte the same results.
func checkBatch(t *testing.T, p compiled.Predictor, ctxs []query.Seq) {
	t.Helper()
	// A batch large enough to clear the parallel fan-out's sequential
	// fallback, with repeated contexts (the dedup path) and varied n.
	var bctxs []query.Seq
	var ns []int
	for len(bctxs) < 48 {
		for i, ctx := range ctxs {
			bctxs = append(bctxs, ctx)
			ns = append(ns, 1+(len(bctxs)+i)%5)
		}
	}
	want := make([][]model.Prediction, len(bctxs))
	for i, ctx := range bctxs {
		want[i] = p.PredictInto(nil, ctx, ns[i])
	}

	// Replay parity: batch-shaped sequential serving is deterministic.
	for i, ctx := range bctxs {
		again := p.PredictInto(nil, ctx, ns[i])
		assertSamePreds(t, "replay", i, again, want[i])
	}

	collect := func(run func(emit func(i int, preds []model.Prediction))) [][]model.Prediction {
		got := make([][]model.Prediction, len(bctxs))
		emitted := make([]int, len(bctxs))
		var mu sync.Mutex
		run(func(i int, preds []model.Prediction) {
			mu.Lock()
			emitted[i]++
			got[i] = append([]model.Prediction(nil), preds...)
			mu.Unlock()
		})
		for i, n := range emitted {
			if n != 1 {
				t.Fatalf("index %d emitted %d times, want exactly once", i, n)
			}
		}
		return got
	}

	if bp, ok := p.(batchPredictor); ok {
		got := collect(func(emit func(int, []model.Prediction)) { bp.PredictBatch(bctxs, ns, emit) })
		for i := range want {
			assertSamePreds(t, "PredictBatch", i, got[i], want[i])
		}
	}
	if pp, ok := p.(parallelBatchPredictor); ok {
		for _, workers := range []int{0, 1, 2, 3, 8} {
			got := collect(func(emit func(int, []model.Prediction)) {
				pp.PredictBatchParallel(bctxs, ns, workers, emit)
			})
			for i := range want {
				assertSamePreds(t, "PredictBatchParallel", i, got[i], want[i])
			}
		}
	}
}

// assertSamePreds requires bit-identical predictions — batched serving may
// not drift from the sequential answer by even an ulp.
func assertSamePreds(t *testing.T, label string, i int, got, want []model.Prediction) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: index %d answered %d predictions, want %d", label, i, len(got), len(want))
	}
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("%s: index %d rank %d: %+v, want %+v", label, i, j, got[j], want[j])
		}
	}
}
