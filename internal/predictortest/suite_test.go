package predictortest_test

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/hmm"
	"repro/internal/logfmt"
	"repro/internal/pairwise"
	"repro/internal/predictortest"
	"repro/internal/query"
)

// trainingData builds a small shared corpus: two refinement chains with
// enough repetition that every family produces confident answers.
func trainingData() (*query.Dict, []query.Session, []query.Seq) {
	d := query.NewDict()
	seq := func(queries ...string) query.Seq {
		s := make(query.Seq, len(queries))
		for i, q := range queries {
			s[i] = d.Intern(q)
		}
		return s
	}
	sessions := []query.Session{
		{Queries: seq("nokia n73", "nokia n73 themes"), Count: 30},
		{Queries: seq("nokia n73", "nokia n73 review"), Count: 10},
		{Queries: seq("kidney stones", "kidney stone symptoms"), Count: 20},
		{Queries: seq("kidney stones", "kidney stone symptoms", "kidney stone treatment"), Count: 5},
	}
	ctxs := []query.Seq{
		seq("nokia n73"),
		seq("kidney stones"),
		seq("kidney stones", "kidney stone symptoms"),
		seq("query never trained"), // uncovered: must answer empty, not panic
	}
	return d, sessions, ctxs
}

func TestCompiledModelConformance(t *testing.T) {
	d, sessions, ctxs := trainingData()
	cfg := core.DefaultConfig()
	cfg.Epsilons = []float64{0.0, 0.05}
	cfg.Mixture.TrainSample = 50
	cfg.Mixture.NewtonIters = 3
	rec := core.TrainFromAggregated(d, sessions, cfg)
	cm := rec.CompiledModel()
	if cm == nil {
		t.Fatal("training produced no compiled model")
	}
	predictortest.Run(t, cm, ctxs)
}

func TestHMMConformance(t *testing.T) {
	d, sessions, ctxs := trainingData()
	cfg := hmm.DefaultConfig(d.Len())
	cfg.States = 4
	cfg.Iterations = 8
	m, err := hmm.Train(sessions, cfg)
	if err != nil {
		t.Fatal(err)
	}
	predictortest.Run(t, m, ctxs)
}

func TestClusterConformance(t *testing.T) {
	d, _, ctxs := trainingData()
	g := cluster.NewClickGraph(d)
	// Queries about the same phone share clicked URLs; so do the medical
	// queries. Click counts exceed DefaultConfig's MinClicks.
	add := func(q, url string, times int) {
		for i := 0; i < times; i++ {
			g.Add(logfmt.Record{Query: q, Clicks: []logfmt.Click{{URL: url}}})
		}
	}
	add("nokia n73", "phones.example/n73", 8)
	add("nokia n73 themes", "phones.example/n73", 6)
	add("nokia n73 review", "phones.example/n73", 4)
	add("kidney stones", "health.example/stones", 8)
	add("kidney stone symptoms", "health.example/stones", 6)
	add("kidney stone treatment", "health.example/stones", 4)
	predictortest.Run(t, cluster.Build(g, cluster.DefaultConfig()), ctxs)
}

func TestAdjacencyConformance(t *testing.T) {
	d, sessions, ctxs := trainingData()
	predictortest.Run(t, pairwise.NewAdjacency(sessions, d.Len()), ctxs)
}

func TestCooccurrenceConformance(t *testing.T) {
	d, sessions, ctxs := trainingData()
	predictortest.Run(t, pairwise.NewCooccurrence(sessions, d.Len()), ctxs)
}

// TestFamilyArmsServable is the acceptance check that every family predictor
// lifts into the serving seam: FromPredictor over the shared dictionary must
// answer through the same Recommender code path the HTTP layer uses.
func TestFamilyArmsServable(t *testing.T) {
	d, sessions, _ := trainingData()
	m, err := hmm.Train(sessions, hmm.DefaultConfig(d.Len()))
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		rec  core.Recommender
	}{
		{"hmm", core.FromPredictor(d, m, core.LoadInfo{})},
		{"adjacency", core.FromPredictor(d, pairwise.NewAdjacency(sessions, d.Len()), core.LoadInfo{})},
		{"cooccurrence", core.FromPredictor(d, pairwise.NewCooccurrence(sessions, d.Len()), core.LoadInfo{})},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := core.Recommend(tc.rec, []string{"nokia n73"}, 5)
			if len(got) == 0 {
				t.Fatalf("family %s served no suggestions through the Recommender seam", tc.name)
			}
			for _, s := range got {
				if s.Query == "" || s.Score <= 0 {
					t.Fatalf("family %s served malformed suggestion %+v", tc.name, s)
				}
			}
		})
	}
}
