package experiments

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/eval"
	"repro/internal/loggen"
	"repro/internal/session"
)

// Fig1Result is the distribution of the seven session-pattern types over a
// sample of generated sessions (paper Fig. 1 / Table I).
type Fig1Result struct {
	Sample         int
	Counts         [7]int
	OrderSensitive float64 // spelling + generalization + specialization share
}

// Fig1 computes the pattern distribution over the first n labeled training
// sessions (the paper sampled 20,000).
func Fig1(c *Corpus, n int) Fig1Result {
	if n <= 0 || n > len(c.TrainLabels) {
		n = len(c.TrainLabels)
	}
	var res Fig1Result
	res.Sample = n
	for _, ls := range c.TrainLabels[:n] {
		res.Counts[ls.Pattern]++
	}
	os := res.Counts[loggen.PatSpelling] + res.Counts[loggen.PatGeneralization] + res.Counts[loggen.PatSpecialization]
	if n > 0 {
		res.OrderSensitive = float64(os) / float64(n)
	}
	return res
}

// RenderFig1 prints the Fig. 1 distribution.
func (r Fig1Result) Render(w io.Writer) {
	heading(w, "Fig. 1 — Distribution of seven types of query session patterns")
	max := 0.0
	shares := make([]float64, 7)
	for i, c := range r.Counts {
		shares[i] = float64(c) / float64(r.Sample)
		if shares[i] > max {
			max = shares[i]
		}
	}
	for i, s := range shares {
		renderBar(w, loggen.PatternNames[i], s, max, 22)
	}
	fmt.Fprintf(w, "  order-sensitive total: %.2f%% (paper: 34.34%%)\n", 100*r.OrderSensitive)
}

// Fig2Result is the entropy-vs-context-length curve.
type Fig2Result struct {
	Entropy []float64 // index = context length
}

// Fig2 computes the average prediction entropy for context lengths 0..4
// over the full (pre-reduction) training sessions.
func Fig2(c *Corpus) Fig2Result {
	return Fig2Result{Entropy: eval.ContextEntropy(c.TrainAggFull, 4)}
}

// Render prints the Fig. 2 curve.
func (r Fig2Result) Render(w io.Writer) {
	heading(w, "Fig. 2 — Average prediction entropy versus context length (log10)")
	max := 0.0
	for _, h := range r.Entropy {
		if h > max {
			max = h
		}
	}
	for l, h := range r.Entropy {
		renderBar(w, fmt.Sprintf("context length %d", l), h, max, 22)
	}
}

// Table4Result is the Table IV summary statistics.
type Table4Result struct {
	Train, Test session.Stats
}

// Table4 summarises both windows before reduction.
func Table4(c *Corpus) Table4Result {
	return Table4Result{Train: session.Collect(c.TrainAggFull), Test: session.Collect(c.TestAggFull)}
}

// Render prints Table IV.
func (r Table4Result) Render(w io.Writer) {
	heading(w, "Table IV — Summary statistics of segmented sessions")
	renderTable(w,
		[]string{"Data", "# Sessions", "# Searches", "# Unique queries", "Mean length"},
		[][]string{
			{"training", fmt.Sprint(r.Train.Sessions), fmt.Sprint(r.Train.Searches), fmt.Sprint(r.Train.UniqueQueries), f2(r.Train.MeanLength())},
			{"test", fmt.Sprint(r.Test.Sessions), fmt.Sprint(r.Test.Searches), fmt.Sprint(r.Test.UniqueQueries), f2(r.Test.MeanLength())},
		})
}

// HistResult is a session-length histogram pair (Figs. 5 and 7).
type HistResult struct {
	Title         string
	TrainL, TestL []int
	TrainC, TestC []uint64
	RetainedMass  float64 // only meaningful for Fig. 7
}

// Fig5 histograms session counts by length before reduction.
func Fig5(c *Corpus) HistResult {
	tr := session.Collect(c.TrainAggFull)
	te := session.Collect(c.TestAggFull)
	res := HistResult{Title: "Fig. 5 — Session count versus session length"}
	res.TrainL, res.TrainC = tr.LengthBuckets()
	res.TestL, res.TestC = te.LengthBuckets()
	return res
}

// Fig7 histograms session counts by length after reduction.
func Fig7(c *Corpus) HistResult {
	tr := session.Collect(c.TrainAgg)
	te := session.Collect(c.TestAgg)
	res := HistResult{Title: "Fig. 7 — Session count versus session length after data reduction"}
	res.TrainL, res.TrainC = tr.LengthBuckets()
	res.TestL, res.TestC = te.LengthBuckets()
	res.RetainedMass = c.RetainedMass
	return res
}

// Render prints the histogram pair.
func (r HistResult) Render(w io.Writer) {
	heading(w, r.Title)
	rows := [][]string{}
	for i, l := range r.TrainL {
		test := uint64(0)
		for j, tl := range r.TestL {
			if tl == l {
				test = r.TestC[j]
			}
		}
		rows = append(rows, []string{fmt.Sprint(l), fmt.Sprint(r.TrainC[i]), fmt.Sprint(test)})
	}
	renderTable(w, []string{"Length", "Train sessions", "Test sessions"}, rows)
	if r.RetainedMass > 0 {
		fmt.Fprintf(w, "  retained session mass after reduction: %.2f%% (paper: 60.48%% train / 64.72%% test)\n",
			100*r.RetainedMass)
	}
}

// Fig6Result summarises the power-law fit of aggregated session frequency.
type Fig6Result struct {
	TrainSlope, TrainR2 float64
	TestSlope, TestR2   float64
	TrainTop            []uint64 // top-of-curve sample
}

// Fig6 fits log-log rank/frequency lines for both windows.
func Fig6(c *Corpus) Fig6Result {
	trainRF := session.RankFrequency(c.TrainAggFull)
	testRF := session.RankFrequency(c.TestAggFull)
	var res Fig6Result
	res.TrainSlope, res.TrainR2 = session.PowerLawFit(trainRF)
	res.TestSlope, res.TestR2 = session.PowerLawFit(testRF)
	n := 8
	if len(trainRF) < n {
		n = len(trainRF)
	}
	res.TrainTop = trainRF[:n]
	return res
}

// Render prints the Fig. 6 fit.
func (r Fig6Result) Render(w io.Writer) {
	heading(w, "Fig. 6 — Power law distribution of unique aggregated sessions")
	renderTable(w, []string{"Data", "log-log slope", "R^2"}, [][]string{
		{"training", f4(r.TrainSlope), f4(r.TrainR2)},
		{"test", f4(r.TestSlope), f4(r.TestR2)},
	})
	fmt.Fprintf(w, "  top training frequencies: %v\n", r.TrainTop)
}

// Table5 prints a handful of the most frequent multi-query sessions per
// length, mirroring the paper's Table V sample sessions.
func Table5(c *Corpus, w io.Writer) {
	heading(w, "Table V — Sample sessions")
	byLen := map[int]string{}
	for _, s := range c.TrainAgg {
		l := len(s.Queries)
		if l < 2 || l > 5 {
			continue
		}
		if _, ok := byLen[l]; !ok {
			byLen[l] = s.Queries.Format(c.Dict)
		}
	}
	lengths := make([]int, 0, len(byLen))
	for l := range byLen {
		lengths = append(lengths, l)
	}
	sort.Ints(lengths)
	rows := [][]string{}
	for _, l := range lengths {
		rows = append(rows, []string{fmt.Sprint(l), byLen[l]})
	}
	renderTable(w, []string{"Length", "Session"}, rows)
}
