package experiments

import (
	"fmt"
	"io"

	"repro/internal/eval"
	"repro/internal/markov"
	"repro/internal/session"
)

// Ablations exercise the design choices DESIGN.md §5 calls out. Each returns
// a small table of metric-vs-setting rows.

// EpsilonSweepRow is one setting of the PST growth threshold.
type EpsilonSweepRow struct {
	Epsilon float64
	Nodes   int
	NDCG5   float64
	LogLoss float64
}

// AblationEpsilon sweeps ε for a single unbounded VMM, reproducing the
// Sec. IV.C.1(a) sensitivity claim: accuracy peaks at a moderate ε while the
// tree size shrinks monotonically.
func AblationEpsilon(c *Corpus, epsilons []float64) []EpsilonSweepRow {
	ctxs := c.TestContexts(0, 2500)
	testSample := c.TestAgg
	if len(testSample) > 2500 {
		testSample = testSample[:2500]
	}
	rows := make([]EpsilonSweepRow, 0, len(epsilons))
	for _, e := range epsilons {
		m := markov.NewVMM(c.TrainAgg, markov.VMMConfig{Epsilon: e, Vocab: c.Vocab()})
		rows = append(rows, EpsilonSweepRow{
			Epsilon: e,
			Nodes:   m.NumNodes(),
			NDCG5:   eval.MeanNDCG(m, c.GroundTruth, ctxs, 5).NDCG,
			LogLoss: eval.LogLoss(m, testSample, c.Vocab()),
		})
	}
	return rows
}

// RenderEpsilonSweep prints the ε ablation.
func RenderEpsilonSweep(w io.Writer, rows []EpsilonSweepRow) {
	heading(w, "Ablation — PST growth threshold ε (single VMM)")
	out := [][]string{}
	for _, r := range rows {
		out = append(out, []string{fmt.Sprintf("%.2f", r.Epsilon), fmt.Sprint(r.Nodes), f4(r.NDCG5), f4(r.LogLoss)})
	}
	renderTable(w, []string{"epsilon", "PST nodes", "NDCG@5", "log-loss"}, out)
}

// DBoundRow is one setting of the VMM depth bound.
type DBoundRow struct {
	D     int
	Nodes int
	NDCG5 float64
}

// AblationDBound sweeps the depth bound D for VMM(0.05).
func AblationDBound(c *Corpus, bounds []int) []DBoundRow {
	ctxs := c.TestContexts(0, 2500)
	rows := make([]DBoundRow, 0, len(bounds))
	for _, d := range bounds {
		m := markov.NewVMM(c.TrainAgg, markov.VMMConfig{Epsilon: 0.05, D: d, Vocab: c.Vocab()})
		rows = append(rows, DBoundRow{
			D:     d,
			Nodes: m.NumNodes(),
			NDCG5: eval.MeanNDCG(m, c.GroundTruth, ctxs, 5).NDCG,
		})
	}
	return rows
}

// RenderDBound prints the D-bound ablation.
func RenderDBound(w io.Writer, rows []DBoundRow) {
	heading(w, "Ablation — VMM depth bound D (ε = 0.05)")
	out := [][]string{}
	for _, r := range rows {
		out = append(out, []string{fmt.Sprint(r.D), fmt.Sprint(r.Nodes), f4(r.NDCG5)})
	}
	renderTable(w, []string{"D", "PST nodes", "NDCG@5"}, out)
}

// ReductionRow is one setting of the data-reduction threshold.
type ReductionRow struct {
	Threshold uint64
	Kept      int
	Mass      float64
	Coverage  float64
	NDCG5     float64
}

// AblationReduction sweeps the Sec. V.A.4 frequency threshold, trading
// coverage against noise in the training set.
func AblationReduction(c *Corpus, thresholds []uint64) []ReductionRow {
	rows := make([]ReductionRow, 0, len(thresholds))
	for _, th := range thresholds {
		train, mass := session.Reduce(c.TrainAggFull, th)
		m := markov.NewVMM(train, markov.VMMConfig{Epsilon: 0.05, Vocab: c.Vocab()})
		ctxs := c.TestContexts(0, 2500)
		rows = append(rows, ReductionRow{
			Threshold: th,
			Kept:      len(train),
			Mass:      mass,
			Coverage:  eval.Coverage(m, ctxs),
			NDCG5:     eval.MeanNDCG(m, c.GroundTruth, ctxs, 5).NDCG,
		})
	}
	return rows
}

// RenderReduction prints the reduction-threshold ablation.
func RenderReduction(w io.Writer, rows []ReductionRow) {
	heading(w, "Ablation — data reduction threshold (VMM 0.05)")
	out := [][]string{}
	for _, r := range rows {
		out = append(out, []string{
			fmt.Sprint(r.Threshold), fmt.Sprint(r.Kept),
			fmt.Sprintf("%.2f%%", 100*r.Mass), f4(r.Coverage), f4(r.NDCG5),
		})
	}
	renderTable(w, []string{"threshold", "kept sessions", "mass", "coverage", "NDCG@5"}, out)
}

// SigmaRow compares learned vs fixed mixture widths.
type SigmaRow struct {
	Setting string
	NDCG5   float64
	LogLoss float64
}

// AblationSigma compares the Newton-learned σ against fixed-width mixtures,
// isolating the contribution of Eq. (9) weight learning.
func AblationSigma(c *Corpus) []SigmaRow {
	ctxs := c.TestContexts(0, 2000)
	testSample := c.TestAgg
	if len(testSample) > 2000 {
		testSample = testSample[:2000]
	}
	eps := []float64{0.0, 0.02, 0.05, 0.1}
	configs := []struct {
		name string
		opt  markov.MVMMOptions
	}{
		{"learned sigma (Newton)", markov.MVMMOptions{TrainSample: 1000, NewtonIters: 20}},
		{"fixed sigma = 1", markov.MVMMOptions{FixedSigma: 1}},
		{"fixed sigma = 10 (near-uniform)", markov.MVMMOptions{FixedSigma: 10}},
	}
	rows := make([]SigmaRow, 0, len(configs))
	for _, cf := range configs {
		m := markov.NewMVMMFromEpsilons(c.TrainAgg, eps, c.Vocab(), cf.opt)
		rows = append(rows, SigmaRow{
			Setting: cf.name,
			NDCG5:   eval.MeanNDCG(m, c.GroundTruth, ctxs, 5).NDCG,
			LogLoss: eval.LogLoss(m, testSample, c.Vocab()),
		})
	}
	return rows
}

// RenderSigma prints the σ ablation.
func RenderSigma(w io.Writer, rows []SigmaRow) {
	heading(w, "Ablation — MVMM mixture weights: learned vs fixed σ")
	out := [][]string{}
	for _, r := range rows {
		out = append(out, []string{r.Setting, f4(r.NDCG5), f4(r.LogLoss)})
	}
	renderTable(w, []string{"setting", "NDCG@5", "log-loss"}, out)
}
