package experiments

import (
	"fmt"
	"io"
	"time"
)

// RunOptions selects what the full harness executes.
type RunOptions struct {
	Corpus         CorpusConfig
	SkipFig12      bool // timing sweep retrains everything; slowest step
	SkipAblation   bool
	SkipExtensions bool // HMM/cluster/drift future-work experiments
	StudyPerLen    int  // user-study contexts per length (paper: 500)
}

// DefaultRunOptions runs everything at the default corpus scale.
func DefaultRunOptions() RunOptions {
	return RunOptions{Corpus: DefaultCorpusConfig(), StudyPerLen: 500}
}

// RunAll regenerates every table and figure of the paper's evaluation
// section, writing human-readable output to w. It returns the corpus and
// trained models so callers (the CLI) can reuse them.
func RunAll(w io.Writer, opt RunOptions) (*Corpus, *Models, error) {
	start := time.Now()
	fmt.Fprintf(w, "Building corpus: %d train / %d test sessions, reduction threshold %d\n",
		opt.Corpus.TrainSessions, opt.Corpus.TestSessions, opt.Corpus.ReductionThreshold)
	c, err := BuildCorpus(opt.Corpus)
	if err != nil {
		return nil, nil, err
	}
	fmt.Fprintf(w, "Corpus ready in %.1fs: vocab=%d, train agg=%d (%d reduced), test agg=%d, gt contexts=%d\n",
		time.Since(start).Seconds(), c.Vocab(), len(c.TrainAggFull), len(c.TrainAgg),
		len(c.TestAggFull), c.GroundTruth.Len())

	// Sec. V.A — data preparation figures.
	Fig1(c, 20000).Render(w)
	Fig2(c).Render(w)
	Table4(c).Render(w)
	Fig5(c).Render(w)
	Fig6(c).Render(w)
	Fig7(c).Render(w)
	Table5(c, w)

	// Train all methods once.
	tTrain := time.Now()
	m := TrainModels(c)
	fmt.Fprintf(w, "\nAll models trained in %.1fs\n", time.Since(tTrain).Seconds())

	// Sec. V.D — accuracy.
	for i, panel := range Fig8(c, m) {
		panel.Render(w, fmt.Sprintf("Fig. 8(%c) — pair-wise vs sequence methods", 'a'+i))
	}
	for i, panel := range Fig9(c, m) {
		panel.Render(w, fmt.Sprintf("Fig. 9(%c) — MVMM vs VMM", 'a'+i))
	}

	// Sec. V.E — coverage.
	Fig10(c, m).Render(w)
	Fig11(c, m).Render(w)
	Table6(c, m).Render(w)

	// Sec. V.F — memory.
	t7, err := Table7(m)
	if err != nil {
		return c, m, err
	}
	t7.Render(w)

	// Sec. V.G — training time.
	if !opt.SkipFig12 {
		Fig12(c).Render(w)
	}

	// Sec. V.H — user study.
	UserStudy(c, m, opt.StudyPerLen).Render(w)

	// DESIGN.md §5 ablations.
	if !opt.SkipAblation {
		RenderEpsilonSweep(w, AblationEpsilon(c, []float64{0.0, 0.02, 0.05, 0.1, 0.2}))
		RenderDBound(w, AblationDBound(c, []int{1, 2, 3, 4}))
		RenderReduction(w, AblationReduction(c, []uint64{0, 1, 2, 5, 10}))
		RenderSigma(w, AblationSigma(c))
	}

	// Sec. VI future-work extensions.
	if !opt.SkipExtensions {
		ext, err := Extensions(c, m)
		if err != nil {
			return c, m, err
		}
		ext.Render(w)
		drift, err := Drift(c, 3, opt.Corpus.TestSessions/3)
		if err != nil {
			return c, m, err
		}
		drift.Render(w)
	}

	fmt.Fprintf(w, "\nTotal harness time: %.1fs\n", time.Since(start).Seconds())
	return c, m, nil
}
