package experiments

import (
	"fmt"
	"io"
	"strings"
)

// renderTable writes an aligned ASCII table.
func renderTable(w io.Writer, headers []string, rows [][]string) {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(headers)
	rule := make([]string, len(headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	line(rule)
	for _, row := range rows {
		line(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// renderBar writes one row of a horizontal bar chart scaled to maxWidth
// columns.
func renderBar(w io.Writer, label string, value, max float64, labelWidth int) {
	const maxWidth = 44
	bar := 0
	if max > 0 {
		bar = int(value / max * maxWidth)
	}
	if bar > maxWidth {
		bar = maxWidth
	}
	fmt.Fprintf(w, "  %s |%s %0.4f\n", pad(label, labelWidth), strings.Repeat("#", bar), value)
}

// renderSeries writes a small numeric series as "x: y" pairs on one line.
func renderSeries(w io.Writer, name string, xs []int, ys []float64) {
	var sb strings.Builder
	for i, x := range xs {
		if i > 0 {
			sb.WriteString("  ")
		}
		fmt.Fprintf(&sb, "%d:%.4f", x, ys[i])
	}
	fmt.Fprintf(w, "  %-18s %s\n", name, sb.String())
}

func heading(w io.Writer, title string) {
	fmt.Fprintf(w, "\n== %s ==\n", title)
}

func f4(v float64) string { return fmt.Sprintf("%.4f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
