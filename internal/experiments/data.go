// Package experiments regenerates every table and figure of the paper's
// evaluation section (Sec. V) on the synthetic log substrate, printing the
// same rows and series the paper reports. Each experiment has a compute
// function returning a typed result (used by the benchmark harness) and a
// renderer writing a human-readable table/chart.
package experiments

import (
	"fmt"

	"repro/internal/loggen"
	"repro/internal/markov"
	"repro/internal/model"
	"repro/internal/pairwise"
	"repro/internal/query"
	"repro/internal/session"
)

// CorpusConfig sizes the synthetic corpus. The train:test ratio defaults to
// 4:1, mirroring the paper's 120-day train / 30-day test split.
type CorpusConfig struct {
	TrainSessions      int
	TestSessions       int
	ReductionThreshold uint64
	Gen                loggen.Config
}

// DefaultCorpusConfig is the scale used by the experiment CLI: large enough
// for stable shapes, small enough for a laptop.
func DefaultCorpusConfig() CorpusConfig {
	return CorpusConfig{
		TrainSessions:      120000,
		TestSessions:       30000,
		ReductionThreshold: 2,
		Gen:                loggen.DefaultConfig(),
	}
}

// SmallCorpusConfig is the scale used by tests and benchmarks.
func SmallCorpusConfig() CorpusConfig {
	cfg := DefaultCorpusConfig()
	cfg.TrainSessions = 24000
	cfg.TestSessions = 6000
	cfg.ReductionThreshold = 1
	cfg.Gen.Machines = 1500
	cfg.Gen.Universe.Topics = 80
	return cfg
}

// Corpus is a fully prepared train/test split: raw segmented sessions,
// aggregated sessions before and after reduction, ground truth, and the
// generator's universe (needed by the user-study oracle).
type Corpus struct {
	Cfg         CorpusConfig
	Dict        *query.Dict
	Universe    *loggen.Universe
	TrainLabels []loggen.LabeledSession

	TrainAggFull []query.Session // aggregated, before reduction
	TrainAgg     []query.Session // after reduction
	TestAggFull  []query.Session
	TestAgg      []query.Session
	RetainedMass float64 // training mass surviving reduction (Fig. 7)

	// GroundTruth ranks followers over the reduced test window and is used
	// for accuracy (NDCG needs stable follower rankings, which one-off
	// sessions cannot provide at laptop scale).
	GroundTruth *session.GroundTruth
	// GroundTruthFull spans the unreduced test window and is used for
	// coverage: at the paper's scale even rare sessions repeat past the
	// reduction threshold, so their test set retains the long, never-seen
	// contexts that expose the N-gram coverage collapse; at our scale the
	// unreduced window is the faithful equivalent.
	GroundTruthFull *session.GroundTruth
}

// BuildCorpus generates the synthetic log, segments it with the 30-minute
// rule, aggregates and reduces both windows, and derives test ground truth.
// The train and test windows come from one continuous generator stream, so
// they share the universe but diverge in their Zipf tails — reproducing the
// paper's partial train/test vocabulary overlap.
func BuildCorpus(cfg CorpusConfig) (*Corpus, error) {
	gen, err := loggen.New(cfg.Gen)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	dict := query.NewDict()

	segment := func(n int) ([]query.Seq, []loggen.LabeledSession) {
		seg := session.NewSegmenter(dict, 0)
		labels := make([]loggen.LabeledSession, 0, n)
		for i := 0; i < n; i++ {
			ls := gen.Session()
			labels = append(labels, ls)
			for _, rec := range gen.Records(ls) {
				seg.Add(rec)
			}
		}
		return seg.Flush(), labels
	}

	trainRaw, trainLabels := segment(cfg.TrainSessions)
	gen.EnterTestPhase() // unlock late-onset topics: train/test drift
	testRaw, _ := segment(cfg.TestSessions)

	c := &Corpus{Cfg: cfg, Dict: dict, Universe: gen.Universe(), TrainLabels: trainLabels}
	c.TrainAggFull = session.Aggregate(trainRaw)
	c.TrainAgg, c.RetainedMass = session.Reduce(c.TrainAggFull, cfg.ReductionThreshold)
	c.TestAggFull = session.Aggregate(testRaw)
	c.TestAgg, _ = session.Reduce(c.TestAggFull, cfg.ReductionThreshold)
	c.GroundTruth = session.BuildGroundTruth(c.TestAgg, 5)
	c.GroundTruthFull = session.BuildGroundTruth(c.TestAggFull, 5)
	return c, nil
}

// Vocab returns |Q| over the training dictionary.
func (c *Corpus) Vocab() int { return c.Dict.Len() }

// TestContexts returns up to limit reduced-window ground-truth contexts of
// the given length (0 = all lengths), deterministically.
func (c *Corpus) TestContexts(length, limit int) []query.Seq {
	ctxs := c.GroundTruth.Contexts(length)
	if limit > 0 && len(ctxs) > limit {
		ctxs = ctxs[:limit]
	}
	return ctxs
}

// CoverageContexts returns contexts from the unreduced test window, used by
// the coverage experiments (Figs. 10–11, Table VI).
func (c *Corpus) CoverageContexts(length, limit int) []query.Seq {
	ctxs := c.GroundTruthFull.Contexts(length)
	if limit > 0 && len(ctxs) > limit {
		ctxs = ctxs[:limit]
	}
	return ctxs
}

// Models bundles every trained method under comparison.
type Models struct {
	Adj   *pairwise.Adjacency
	Cooc  *pairwise.Cooccurrence
	NGram *markov.NGram
	VMM00 *markov.VMM
	VMM05 *markov.VMM
	VMM10 *markov.VMM
	MVMM  *markov.MVMM
}

// TrainModels trains all seven methods on the corpus's reduced training
// sessions, matching the paper's Sec. V setup (MVMM = eleven ε values).
func TrainModels(c *Corpus) *Models {
	vocab := c.Vocab()
	train := c.TrainAgg
	return &Models{
		Adj:   pairwise.NewAdjacency(train, vocab),
		Cooc:  pairwise.NewCooccurrence(train, vocab),
		NGram: markov.NewNGram(train, vocab),
		VMM00: markov.NewVMM(train, markov.VMMConfig{Epsilon: 0.0, Vocab: vocab}),
		VMM05: markov.NewVMM(train, markov.VMMConfig{Epsilon: 0.05, Vocab: vocab}),
		VMM10: markov.NewVMM(train, markov.VMMConfig{Epsilon: 0.1, Vocab: vocab}),
		MVMM: markov.NewMVMMFromEpsilons(train, markov.DefaultEpsilons(), vocab,
			markov.MVMMOptions{Parallel: true}),
	}
}

// Fig8Set returns the models compared in Fig. 8 (pair-wise vs sequence).
func (m *Models) Fig8Set() []model.Predictor {
	return []model.Predictor{m.Adj, m.Cooc, m.NGram, m.MVMM}
}

// Fig9Set returns the models compared in Fig. 9 (MVMM vs single VMMs).
func (m *Models) Fig9Set() []model.Predictor {
	return []model.Predictor{m.MVMM, m.VMM00, m.VMM05, m.VMM10}
}

// AllSet returns every method, in the paper's usual presentation order.
func (m *Models) AllSet() []model.Predictor {
	return []model.Predictor{m.Cooc, m.Adj, m.NGram, m.VMM00, m.VMM05, m.VMM10, m.MVMM}
}

// StudySet returns the four methods of the Sec. V.H user study.
func (m *Models) StudySet() []model.Predictor {
	return []model.Predictor{m.Cooc, m.Adj, m.NGram, m.MVMM}
}
