package experiments

import (
	"fmt"
	"io"

	"repro/internal/eval"
	"repro/internal/query"
)

// StudyResult wraps the simulated user evaluation (Table VIII, Figs. 13–14).
type StudyResult struct {
	eval.StudyResult
	Contexts int
}

// UserStudy reproduces the Sec. V.H procedure: 500 test contexts per
// context length 1..4 (2,000 total at full scale), top-5 predictions from
// each of the four methods, approval by the universe oracle, pooled
// deduplicated ground truth.
func UserStudy(c *Corpus, m *Models, perLength int) StudyResult {
	if perLength <= 0 {
		perLength = 500
	}
	// The paper sampled sequences from the raw test data, so the study uses
	// the unreduced test contexts — including the rare, fused and noisy
	// sessions real users produce.
	var contexts []query.Seq
	for l := 1; l <= MaxContextLen; l++ {
		contexts = append(contexts, c.CoverageContexts(l, perLength)...)
	}
	res := eval.UserStudy(m.StudySet(), contexts, c.Dict, c.Universe, nil, 5)
	return StudyResult{StudyResult: res, Contexts: len(contexts)}
}

// Render prints Table VIII and Figs. 13–14.
func (r StudyResult) Render(w io.Writer) {
	heading(w, "Table VIII — User labeling distribution over four methods")
	headers := []string{""}
	predicted := []string{"# predicted queries"}
	approved := []string{"# approved queries"}
	for _, m := range r.Methods {
		headers = append(headers, m.Name)
		predicted = append(predicted, fmt.Sprint(m.Predicted))
		approved = append(approved, fmt.Sprint(m.Approved))
	}
	renderTable(w, headers, [][]string{predicted, approved})
	fmt.Fprintf(w, "  contexts evaluated: %d; pooled unique approved (context,query) pairs: %d\n",
		r.Contexts, r.UniqueGroundTruth)

	heading(w, "Fig. 13 — Overall user evaluation performance")
	rows := [][]string{}
	for i, m := range r.Methods {
		rows = append(rows, []string{m.Name, f4(m.Precision()), f4(r.Recall(i))})
	}
	renderTable(w, []string{"Model", "Precision", "Recall"}, rows)

	heading(w, "Fig. 14 — Precision over top 5 positions")
	headers = []string{"Model"}
	for j := 1; j <= 5; j++ {
		headers = append(headers, fmt.Sprintf("pos %d", j))
	}
	rows = rows[:0]
	for _, m := range r.Methods {
		row := []string{m.Name}
		for j := 1; j <= 5; j++ {
			row = append(row, f4(m.PrecisionAt(j)))
		}
		rows = append(rows, row)
	}
	renderTable(w, headers, rows)
}
