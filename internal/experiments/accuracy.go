package experiments

import (
	"fmt"
	"io"

	"repro/internal/eval"
	"repro/internal/model"
	"repro/internal/query"
)

// MaxContextLen is the longest user-context length evaluated, matching the
// paper's Figs. 8, 9 and 11 (lengths 1–4).
const MaxContextLen = 4

// contextsPerLength caps evaluation contexts per length for tractability.
const contextsPerLength = 4000

// AccuracyResult holds mean NDCG@n per (model, context length) — the data
// behind one panel of Fig. 8 or Fig. 9.
type AccuracyResult struct {
	N       int // NDCG cutoff: 1, 3 or 5
	Models  []string
	Lengths []int
	// NDCG[m][l] is model m's mean NDCG@N at context length Lengths[l].
	NDCG [][]float64
}

// Accuracy evaluates each model's NDCG@n across context lengths 1..MaxContextLen.
func Accuracy(c *Corpus, models []model.Predictor, n int) AccuracyResult {
	res := AccuracyResult{N: n}
	for l := 1; l <= MaxContextLen; l++ {
		res.Lengths = append(res.Lengths, l)
	}
	for _, m := range models {
		res.Models = append(res.Models, m.Name())
		row := make([]float64, 0, len(res.Lengths))
		for _, l := range res.Lengths {
			ctxs := c.TestContexts(l, contextsPerLength)
			row = append(row, eval.MeanNDCG(m, c.GroundTruth, ctxs, n).NDCG)
		}
		res.NDCG = append(res.NDCG, row)
	}
	return res
}

// Render prints one NDCG panel.
func (r AccuracyResult) Render(w io.Writer, title string) {
	heading(w, title)
	headers := []string{fmt.Sprintf("NDCG@%d", r.N)}
	for _, l := range r.Lengths {
		headers = append(headers, fmt.Sprintf("len=%d", l))
	}
	rows := [][]string{}
	for i, name := range r.Models {
		row := []string{name}
		for _, v := range r.NDCG[i] {
			row = append(row, f4(v))
		}
		rows = append(rows, row)
	}
	renderTable(w, headers, rows)
}

// Fig8 computes the three panels of Fig. 8 (NDCG@1/3/5, pair-wise vs
// sequence methods).
func Fig8(c *Corpus, m *Models) []AccuracyResult {
	set := m.Fig8Set()
	return []AccuracyResult{
		Accuracy(c, set, 1),
		Accuracy(c, set, 3),
		Accuracy(c, set, 5),
	}
}

// Fig9 computes the three panels of Fig. 9 (MVMM vs single VMMs).
func Fig9(c *Corpus, m *Models) []AccuracyResult {
	set := m.Fig9Set()
	return []AccuracyResult{
		Accuracy(c, set, 1),
		Accuracy(c, set, 3),
		Accuracy(c, set, 5),
	}
}

// CoverageResult holds overall coverage per model (Fig. 10).
type CoverageResult struct {
	Models   []string
	Coverage []float64
}

// Fig10 measures overall coverage of every method on all unreduced test
// contexts.
func Fig10(c *Corpus, m *Models) CoverageResult {
	ctxs := c.CoverageContexts(0, 0)
	var res CoverageResult
	for _, p := range m.AllSet() {
		res.Models = append(res.Models, p.Name())
		res.Coverage = append(res.Coverage, eval.Coverage(p, ctxs))
	}
	return res
}

// Render prints Fig. 10.
func (r CoverageResult) Render(w io.Writer) {
	heading(w, "Fig. 10 — Coverage of various methods on test data")
	for i, name := range r.Models {
		renderBar(w, name, r.Coverage[i], 1, 18)
	}
}

// CoverageByLenResult holds coverage per (model, context length) — Fig. 11.
type CoverageByLenResult struct {
	Models   []string
	Lengths  []int
	Coverage [][]float64
}

// Fig11 measures coverage across context lengths for the sequence models.
func Fig11(c *Corpus, m *Models) CoverageByLenResult {
	set := []model.Predictor{m.NGram, m.VMM05, m.MVMM}
	var res CoverageByLenResult
	for l := 1; l <= MaxContextLen; l++ {
		res.Lengths = append(res.Lengths, l)
	}
	for _, p := range set {
		res.Models = append(res.Models, p.Name())
		row := make([]float64, 0, len(res.Lengths))
		for _, l := range res.Lengths {
			row = append(row, eval.Coverage(p, c.CoverageContexts(l, 0)))
		}
		res.Coverage = append(res.Coverage, row)
	}
	return res
}

// Render prints Fig. 11.
func (r CoverageByLenResult) Render(w io.Writer) {
	heading(w, "Fig. 11 — Coverage versus context length for sequence-wise models")
	for i, name := range r.Models {
		renderSeries(w, name, r.Lengths, r.Coverage[i])
	}
}

// Table6Result tallies unpredictability reasons per model.
type Table6Result struct {
	Models  []string
	Reasons [][eval.NumReasons]int
}

// Table6 classifies every uncovered test context by the Table VI taxonomy.
func Table6(c *Corpus, m *Models) Table6Result {
	ts := eval.NewTrainStats(c.TrainAgg)
	ctxs := c.CoverageContexts(0, 0)
	var res Table6Result
	type entry struct {
		p       model.Predictor
		isNGram bool
	}
	for _, e := range []entry{
		{m.Cooc, false}, {m.Adj, false}, {m.VMM05, false}, {m.MVMM, false}, {m.NGram, true},
	} {
		res.Models = append(res.Models, e.p.Name())
		res.Reasons = append(res.Reasons, eval.ReasonCounts(e.p, ts, ctxs, e.isNGram))
	}
	return res
}

// Render prints Table VI.
func (r Table6Result) Render(w io.Writer) {
	heading(w, "Table VI — Reasons for unpredictable queries (counts)")
	headers := []string{"Model"}
	for i := 1; i < eval.NumReasons; i++ {
		headers = append(headers, fmt.Sprintf("(%d)", i))
	}
	headers = append(headers, "covered")
	rows := [][]string{}
	for i, name := range r.Models {
		row := []string{name}
		for j := 1; j < eval.NumReasons; j++ {
			row = append(row, fmt.Sprint(r.Reasons[i][j]))
		}
		row = append(row, fmt.Sprint(r.Reasons[i][0]))
		rows = append(rows, row)
	}
	renderTable(w, headers, rows)
}

// evalContexts is a convenience for tests: the contexts Table VI tallies.
func evalContexts(c *Corpus) []query.Seq { return c.CoverageContexts(0, 0) }
