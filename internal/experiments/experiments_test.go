package experiments

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/compiled"
)

// The integration tests share one small corpus and model set; building them
// takes a few seconds, so they are constructed once.
var (
	once       sync.Once
	testCorpus *Corpus
	testModels *Models
	buildErr   error
)

func setup(t *testing.T) (*Corpus, *Models) {
	t.Helper()
	once.Do(func() {
		cfg := SmallCorpusConfig()
		testCorpus, buildErr = BuildCorpus(cfg)
		if buildErr == nil {
			testModels = TrainModels(testCorpus)
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return testCorpus, testModels
}

func TestCorpusShape(t *testing.T) {
	c, _ := setup(t)
	if c.Vocab() == 0 {
		t.Fatal("empty vocabulary")
	}
	if len(c.TrainAgg) == 0 || len(c.TestAgg) == 0 {
		t.Fatal("empty aggregated sessions")
	}
	if len(c.TrainAgg) >= len(c.TrainAggFull) {
		t.Fatal("reduction removed nothing")
	}
	if c.GroundTruth.Len() == 0 {
		t.Fatal("no ground truth")
	}
	if c.RetainedMass <= 0.3 || c.RetainedMass >= 1 {
		t.Fatalf("retained mass = %v, implausible", c.RetainedMass)
	}
}

func TestFig1OrderSensitiveShare(t *testing.T) {
	c, _ := setup(t)
	r := Fig1(c, 20000)
	if r.Sample == 0 {
		t.Fatal("empty sample")
	}
	// Paper: order-sensitive patterns total 34.34%. The generator encodes
	// that mix; sampling noise allows a small band.
	if math.Abs(r.OrderSensitive-0.3434) > 0.03 {
		t.Fatalf("order-sensitive share = %v, want ~0.3434", r.OrderSensitive)
	}
}

func TestFig2EntropyDropsWithContext(t *testing.T) {
	c, _ := setup(t)
	r := Fig2(c)
	if len(r.Entropy) != 5 {
		t.Fatalf("entropy lengths = %d", len(r.Entropy))
	}
	// The paper's curve "drops dramatically": require a strict drop from
	// no context to 2 queries of context.
	if !(r.Entropy[0] > r.Entropy[1] && r.Entropy[1] > r.Entropy[2]) {
		t.Fatalf("entropy not decreasing: %v", r.Entropy)
	}
}

func TestTable4MeanSessionLength(t *testing.T) {
	c, _ := setup(t)
	r := Table4(c)
	// Jansen et al.: average session length 2–3.
	if m := r.Train.MeanLength(); m < 1.8 || m > 3.2 {
		t.Fatalf("train mean length = %v", m)
	}
	if r.Train.Sessions < uint64(r.Test.Sessions) {
		t.Fatal("train window smaller than test window")
	}
}

func TestFig6PowerLaw(t *testing.T) {
	c, _ := setup(t)
	r := Fig6(c)
	if r.TrainSlope >= -0.4 {
		t.Fatalf("train slope = %v, want strongly negative (power law)", r.TrainSlope)
	}
	if r.TrainR2 < 0.7 {
		t.Fatalf("train R² = %v, want a good log-log fit", r.TrainR2)
	}
}

func TestFig8SequenceBeatsPairwise(t *testing.T) {
	c, m := setup(t)
	panel := Accuracy(c, m.Fig8Set(), 5) // NDCG@5 panel
	idx := map[string]int{}
	for i, name := range panel.Models {
		idx[name] = i
	}
	mvmm := panel.NDCG[idx["MVMM"]]
	adj := panel.NDCG[idx["Adjacency"]]
	cooc := panel.NDCG[idx["Co-occurrence"]]
	// Headline claim: sequence methods match or beat pair-wise at every
	// length and win strictly once real context is available (length >= 2;
	// at length 1 both see identical evidence and tie — see EXPERIMENTS.md).
	for l := range panel.Lengths {
		if mvmm[l] < adj[l]-1e-9 {
			t.Errorf("length %d: MVMM %.4f < Adj %.4f", panel.Lengths[l], mvmm[l], adj[l])
		}
		if mvmm[l] < cooc[l]-1e-9 {
			t.Errorf("length %d: MVMM %.4f < Co-occ %.4f", panel.Lengths[l], mvmm[l], cooc[l])
		}
	}
	if !(mvmm[1] > adj[1] && mvmm[1] > cooc[1]) {
		t.Errorf("length 2: MVMM %.4f did not strictly beat Adj %.4f / Co-occ %.4f",
			mvmm[1], adj[1], cooc[1])
	}
	// Pair-wise accuracy decays with context length (monotone trend from
	// length 1 to 4).
	if !(adj[0] > adj[len(adj)-1]) {
		t.Errorf("Adjacency accuracy did not decay with context length: %v", adj)
	}
	// Adjacency beats Co-occurrence (order information helps).
	var adjMean, coocMean float64
	for l := range panel.Lengths {
		adjMean += adj[l]
		coocMean += cooc[l]
	}
	if adjMean <= coocMean {
		t.Errorf("Adj mean %.4f <= Co-occ mean %.4f", adjMean/4, coocMean/4)
	}
}

func TestFig9MVMMCompetitiveWithBestVMM(t *testing.T) {
	c, m := setup(t)
	panel := Accuracy(c, m.Fig9Set(), 5)
	idx := map[string]int{}
	for i, name := range panel.Models {
		idx[name] = i
	}
	mvmm := panel.NDCG[idx["MVMM"]]
	best := make([]float64, len(panel.Lengths))
	for name, i := range idx {
		if name == "MVMM" {
			continue
		}
		for l := range panel.Lengths {
			if panel.NDCG[i][l] > best[l] {
				best[l] = panel.NDCG[i][l]
			}
		}
	}
	// Paper: MVMM achieves comparable accuracy to the best single VMM.
	for l := range panel.Lengths {
		if mvmm[l] < 0.9*best[l] {
			t.Errorf("length %d: MVMM %.4f far below best VMM %.4f", panel.Lengths[l], mvmm[l], best[l])
		}
	}
}

func TestFig10CoverageOrdering(t *testing.T) {
	c, m := setup(t)
	r := Fig10(c, m)
	cov := map[string]float64{}
	for i, name := range r.Models {
		cov[name] = r.Coverage[i]
	}
	// Paper: Co-occ has the best coverage; Adj/VMM/MVMM tie below it;
	// N-gram is by far the worst.
	if cov["Co-occurrence"] < cov["Adjacency"] {
		t.Errorf("Co-occ coverage %.4f < Adj %.4f", cov["Co-occurrence"], cov["Adjacency"])
	}
	if math.Abs(cov["Adjacency"]-cov["MVMM"]) > 1e-9 {
		t.Errorf("Adj %.4f != MVMM %.4f (partial-match strategy should tie them)", cov["Adjacency"], cov["MVMM"])
	}
	if cov["N-gram"] >= cov["MVMM"] {
		t.Errorf("N-gram coverage %.4f >= MVMM %.4f", cov["N-gram"], cov["MVMM"])
	}
}

func TestFig11NGramCoverageCollapses(t *testing.T) {
	c, m := setup(t)
	r := Fig11(c, m)
	idx := map[string]int{}
	for i, name := range r.Models {
		idx[name] = i
	}
	ng := r.Coverage[idx["N-gram"]]
	mv := r.Coverage[idx["MVMM"]]
	last := len(r.Lengths) - 1
	// N-gram decays below MVMM everywhere, and collapses at long contexts
	// relative to its own length-1 coverage.
	for l := range r.Lengths {
		if ng[l] > mv[l]+1e-9 {
			t.Errorf("length %d: N-gram %.4f > MVMM %.4f", r.Lengths[l], ng[l], mv[l])
		}
	}
	if ng[last] > 0.5*ng[0] {
		t.Errorf("N-gram coverage did not collapse: %v", ng)
	}
	// VMM/MVMM decay sub-linearly: still covering a sizeable share at
	// length 4.
	if mv[last] < 0.25 {
		t.Errorf("MVMM coverage at length 4 = %.4f, want respectable", mv[last])
	}
}

func TestTable6ReasonsAccountForAllContexts(t *testing.T) {
	c, m := setup(t)
	r := Table6(c, m)
	total := len(evalContexts(c))
	for i, name := range r.Models {
		sum := 0
		for _, v := range r.Reasons[i] {
			sum += v
		}
		if sum != total {
			t.Errorf("%s: reasons sum %d != contexts %d", name, sum, total)
		}
	}
}

func TestTable7FootprintOrdering(t *testing.T) {
	_, m := setup(t)
	r, err := Table7(m)
	if err != nil {
		t.Fatal(err)
	}
	size := map[string]int64{}
	for i, name := range r.Models {
		size[name] = r.Bytes[i]
	}
	// MVMM is the largest; VMM models exceed pair-wise models; the union
	// PST equals the ε=0 full tree (components are nested).
	if size["MVMM"] < size["VMM (0)"] {
		t.Errorf("MVMM %d < VMM(0.0) %d", size["MVMM"], size["VMM (0)"])
	}
	if size["VMM (0)"] < size["Adjacency"] {
		t.Errorf("VMM(0.0) %d < Adj %d", size["VMM (0)"], size["Adjacency"])
	}
	if r.MVMMUnion != r.VMM00Size {
		t.Errorf("union PST %d != VMM(0.0) nodes %d", r.MVMMUnion, r.VMM00Size)
	}
}

// TestTable7CompiledRowsMatchBlobBytes: Table VII's compiled rows must be
// the exact byte lengths of the serving blobs production maps — the
// AppendFlat/AppendFlat4 output — not an estimate, and the quantised row
// must realise a substantial reduction over the exact flat form.
func TestTable7CompiledRowsMatchBlobBytes(t *testing.T) {
	_, m := setup(t)
	r, err := Table7(m)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := compiled.Compile(m.MVMM)
	if err != nil {
		t.Fatal(err)
	}
	size := map[string]int64{}
	for i, name := range r.Models {
		size[name] = r.Bytes[i]
	}
	if want := int64(len(comp.AppendFlat(nil))); size["MVMM (compiled CPS3)"] != want || r.CPS3Bytes != want {
		t.Errorf("CPS3 row %d (field %d) != len(AppendFlat) %d", size["MVMM (compiled CPS3)"], r.CPS3Bytes, want)
	}
	blob4, err := comp.AppendFlat4(nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(len(blob4)); size["MVMM (compiled CPS4, quantised)"] != want || r.CPS4Bytes != want {
		t.Errorf("CPS4 row %d (field %d) != len(AppendFlat4) %d", size["MVMM (compiled CPS4, quantised)"], r.CPS4Bytes, want)
	}
	if r.CPS4Bytes >= r.CPS3Bytes {
		t.Errorf("quantised CPS4 blob %d >= exact CPS3 blob %d", r.CPS4Bytes, r.CPS3Bytes)
	}
	// The compiled serving blob must also undercut the serialized
	// interpreted mixture it replaces — the deployment argument of Table VII.
	if r.CPS4Bytes >= size["MVMM"] {
		t.Errorf("CPS4 blob %d >= interpreted MVMM %d", r.CPS4Bytes, size["MVMM"])
	}
}

func TestUserStudyShape(t *testing.T) {
	c, m := setup(t)
	r := UserStudy(c, m, 100)
	if r.Contexts == 0 || r.UniqueGroundTruth == 0 {
		t.Fatal("empty study")
	}
	prec := map[string]float64{}
	pred := map[string]int{}
	for _, ms := range r.Methods {
		if ms.Predicted == 0 {
			t.Fatalf("%s predicted nothing", ms.Name)
		}
		prec[ms.Name] = ms.Precision()
		pred[ms.Name] = ms.Predicted
		if p := ms.Precision(); p < 0 || p > 1 {
			t.Fatalf("%s precision = %v", ms.Name, p)
		}
	}
	// Paper Table VIII / Fig. 13 orderings: MVMM leads precision, the
	// sequence models beat Co-occurrence, and the pair-wise methods predict
	// more queries than the sequence methods.
	if prec["MVMM"] <= prec["Co-occurrence"] {
		t.Errorf("MVMM precision %.4f <= Co-occ %.4f", prec["MVMM"], prec["Co-occurrence"])
	}
	if prec["MVMM"] <= prec["Adjacency"] {
		t.Errorf("MVMM precision %.4f <= Adj %.4f", prec["MVMM"], prec["Adjacency"])
	}
	if prec["N-gram"] <= prec["Co-occurrence"] {
		t.Errorf("N-gram precision %.4f <= Co-occ %.4f", prec["N-gram"], prec["Co-occurrence"])
	}
	if pred["Co-occurrence"] <= pred["MVMM"] || pred["Adjacency"] <= pred["N-gram"] {
		t.Errorf("pair-wise methods should predict more queries: %v", pred)
	}
}

func TestAblationEpsilonTreeShrinks(t *testing.T) {
	c, _ := setup(t)
	rows := AblationEpsilon(c, []float64{0.0, 0.1, 0.5})
	if !(rows[0].Nodes >= rows[1].Nodes && rows[1].Nodes >= rows[2].Nodes) {
		t.Fatalf("tree size not monotone in ε: %+v", rows)
	}
}

func TestAblationDBoundDepthGrowsNodes(t *testing.T) {
	c, _ := setup(t)
	rows := AblationDBound(c, []int{1, 3})
	if rows[0].Nodes >= rows[1].Nodes {
		t.Fatalf("D=1 nodes %d >= D=3 nodes %d", rows[0].Nodes, rows[1].Nodes)
	}
}

func TestAblationReductionMassMonotone(t *testing.T) {
	c, _ := setup(t)
	rows := AblationReduction(c, []uint64{0, 5})
	if rows[0].Mass < rows[1].Mass {
		t.Fatalf("retained mass not monotone: %+v", rows)
	}
	if rows[0].Coverage < rows[1].Coverage {
		t.Fatalf("coverage should not improve with harsher reduction: %+v", rows)
	}
}

func TestRendersProduceOutput(t *testing.T) {
	c, m := setup(t)
	var buf bytes.Buffer
	Fig1(c, 1000).Render(&buf)
	Fig2(c).Render(&buf)
	Table4(c).Render(&buf)
	Fig5(c).Render(&buf)
	Fig6(c).Render(&buf)
	Fig7(c).Render(&buf)
	Table5(c, &buf)
	Accuracy(c, m.Fig8Set(), 1).Render(&buf, "test panel")
	Fig10(c, m).Render(&buf)
	Fig11(c, m).Render(&buf)
	Table6(c, m).Render(&buf)
	if t7, err := Table7(m); err == nil {
		t7.Render(&buf)
	} else {
		t.Fatal(err)
	}
	UserStudy(c, m, 20).Render(&buf)
	out := buf.String()
	for _, want := range []string{"Fig. 1", "Fig. 2", "Table IV", "Fig. 5", "Fig. 6", "Fig. 7",
		"Table V", "Fig. 10", "Fig. 11", "Table VI", "Table VII", "Table VIII", "Fig. 13", "Fig. 14"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestExtensionsComparison(t *testing.T) {
	c, m := setup(t)
	r, err := Extensions(c, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Models) != 4 {
		t.Fatalf("models = %v", r.Models)
	}
	vals := map[string]int{}
	for i, name := range r.Models {
		vals[name] = i
		if r.NDCG5[i] < 0 || r.NDCG5[i] > 1 || r.Coverage[i] < 0 || r.Coverage[i] > 1 {
			t.Fatalf("%s out of range: %v / %v", name, r.NDCG5[i], r.Coverage[i])
		}
	}
	// The paper's Sec. II critique: cluster-based recommenders suggest
	// replacements, not next queries, so they trail MVMM on next-query NDCG.
	if r.NDCG5[vals["Cluster"]] >= r.NDCG5[vals["MVMM"]] {
		t.Errorf("cluster NDCG %.4f >= MVMM %.4f", r.NDCG5[vals["Cluster"]], r.NDCG5[vals["MVMM"]])
	}
}

func TestDriftRetrainingHelpsCoverage(t *testing.T) {
	c, _ := setup(t)
	r, err := Drift(c, 2, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Slices != 2 {
		t.Fatalf("slices = %d", r.Slices)
	}
	// By the last slice the retrained model must cover at least as much as
	// the stale one (it has seen the emerging topics).
	last := r.Slices - 1
	if r.RetrCov[last] < r.StaleCov[last] {
		t.Errorf("retrained coverage %.4f < stale %.4f", r.RetrCov[last], r.StaleCov[last])
	}
}
