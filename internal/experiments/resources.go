package experiments

import (
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/compiled"
	"repro/internal/markov"
	"repro/internal/pairwise"
	"repro/internal/query"
	"repro/internal/store"
)

// Table7Result reports each model's memory footprint in bytes — the paper's
// Table VII comparison — plus the PST node counts the paper quotes in
// Sec. V.F.2. Interpreted models are measured as their serialized (CPS-free
// varint) footprint; the MVMM is additionally measured in the two compiled
// single-PST serving forms production actually maps: the exact CPS3 flat
// blob and the quantised CPS4 blob, both byte-exact AppendFlat outputs.
type Table7Result struct {
	Models    []string
	Bytes     []int64
	MVMMUnion int   // distinct nodes across all MVMM components
	VMM00Size int   // the full tree's node count (paper: union == VMM(0.0))
	CPS3Bytes int64 // exact compiled (CPS3) blob size — what a V003 file maps
	CPS4Bytes int64 // quantised compiled (CPS4) blob size — what a V004 file maps; 0 when the model does not fit the quantised layout
}

// Table7 measures footprints of every trained model, including the compiled
// serving forms of the MVMM.
func Table7(m *Models) (Table7Result, error) {
	var res Table7Result
	add := func(name string, wt interface {
		WriteTo(io.Writer) (int64, error)
	}) error {
		n, err := store.Footprint(wt)
		if err != nil {
			return fmt.Errorf("experiments: footprint of %s: %w", name, err)
		}
		res.Models = append(res.Models, name)
		res.Bytes = append(res.Bytes, n)
		return nil
	}
	for _, step := range []struct {
		name string
		wt   io.WriterTo
	}{
		{m.MVMM.Name(), m.MVMM},
		{m.VMM00.Name(), m.VMM00},
		{m.VMM05.Name(), m.VMM05},
		{m.VMM10.Name(), m.VMM10},
		{m.Adj.Name(), m.Adj},
		{m.Cooc.Name(), m.Cooc},
		{m.NGram.Name(), m.NGram},
	} {
		if err := add(step.name, step.wt); err != nil {
			return res, err
		}
	}
	comp, err := compiled.Compile(m.MVMM)
	if err != nil {
		return res, fmt.Errorf("experiments: compiling MVMM for Table VII: %w", err)
	}
	res.CPS3Bytes = int64(len(comp.AppendFlat(nil)))
	res.Models = append(res.Models, "MVMM (compiled CPS3)")
	res.Bytes = append(res.Bytes, res.CPS3Bytes)
	switch blob4, err := comp.AppendFlat4(nil); {
	case err == nil:
		res.CPS4Bytes = int64(len(blob4))
		res.Models = append(res.Models, "MVMM (compiled CPS4, quantised)")
		res.Bytes = append(res.Bytes, res.CPS4Bytes)
	case errors.Is(err, compiled.ErrUnquantisable):
		// The model does not fit the quantised layout (matching the save
		// path, which falls back to CPS3); render the table without the row.
	default:
		return res, fmt.Errorf("experiments: quantising MVMM for Table VII: %w", err)
	}
	res.MVMMUnion = m.MVMM.UnionNodes()
	res.VMM00Size = m.VMM00.NumNodes()
	return res, nil
}

// Render prints Table VII.
func (r Table7Result) Render(w io.Writer) {
	heading(w, "Table VII — Memory footprint for all methods (bytes; interpreted models serialized, compiled MVMM as the mmapped serving blob)")
	rows := [][]string{}
	for i, name := range r.Models {
		rows = append(rows, []string{name, fmt.Sprint(r.Bytes[i]), fmt.Sprintf("%.2f MB", float64(r.Bytes[i])/1e6)})
	}
	renderTable(w, []string{"Model", "Bytes", "MB"}, rows)
	fmt.Fprintf(w, "  MVMM union-PST nodes: %d; VMM(0.0) nodes: %d (paper: union == full tree)\n",
		r.MVMMUnion, r.VMM00Size)
	if r.CPS3Bytes > 0 && r.CPS4Bytes > 0 {
		fmt.Fprintf(w, "  compiled serving blob: CPS3 %d B -> quantised CPS4 %d B (%.1f%% smaller)\n",
			r.CPS3Bytes, r.CPS4Bytes, 100*(1-float64(r.CPS4Bytes)/float64(r.CPS3Bytes)))
	}
}

// Fig12Result holds training time versus data size for every method.
type Fig12Result struct {
	Sizes  []int // number of aggregated training sessions used
	Models []string
	// Seconds[m][s] is model m's training time on Sizes[s] sessions.
	Seconds [][]float64
}

// Fig12 trains each method on growing prefixes of the training data
// (25/50/75/100%) and times it. The sweep uses the full (unreduced)
// aggregated sessions so the timings are dominated by real work rather than
// noise, and the MVMM components are trained serially so the reported time
// reflects the paper's K-fold training cost.
func Fig12(c *Corpus) Fig12Result {
	full := c.TrainAggFull
	var res Fig12Result
	fractions := []float64{0.25, 0.5, 0.75, 1.0}
	for _, f := range fractions {
		res.Sizes = append(res.Sizes, int(f*float64(len(full))))
	}
	vocab := c.Vocab()
	type trainer struct {
		name string
		fn   func(train []query.Session)
	}
	trainers := []trainer{
		{"Adjacency", func(t []query.Session) { pairwise.NewAdjacency(t, vocab) }},
		{"Co-occurrence", func(t []query.Session) { pairwise.NewCooccurrence(t, vocab) }},
		{"N-gram", func(t []query.Session) { markov.NewNGram(t, vocab) }},
		{"VMM (0.05)", func(t []query.Session) {
			markov.NewVMM(t, markov.VMMConfig{Epsilon: 0.05, Vocab: vocab})
		}},
		{"MVMM", func(t []query.Session) {
			markov.NewMVMMFromEpsilons(t, markov.DefaultEpsilons(), vocab,
				markov.MVMMOptions{TrainSample: 500, NewtonIters: 10})
		}},
	}
	for _, tr := range trainers {
		res.Models = append(res.Models, tr.name)
		row := make([]float64, 0, len(res.Sizes))
		for _, n := range res.Sizes {
			start := time.Now()
			tr.fn(full[:n])
			row = append(row, time.Since(start).Seconds())
		}
		res.Seconds = append(res.Seconds, row)
	}
	return res
}

// Render prints Fig. 12.
func (r Fig12Result) Render(w io.Writer) {
	heading(w, "Fig. 12 — Training time versus amount of training data (seconds)")
	headers := []string{"Model"}
	for _, s := range r.Sizes {
		headers = append(headers, fmt.Sprintf("%d", s))
	}
	rows := [][]string{}
	for i, name := range r.Models {
		row := []string{name}
		for _, v := range r.Seconds[i] {
			row = append(row, fmt.Sprintf("%.3f", v))
		}
		rows = append(rows, row)
	}
	renderTable(w, headers, rows)
}

// LinearityRatio reports max/min of time-per-session across sizes for model
// i — near 1 means linear scaling (the paper's headline claim for Fig. 12).
func (r Fig12Result) LinearityRatio(i int) float64 {
	lo, hi := 0.0, 0.0
	for j, n := range r.Sizes {
		if n == 0 || r.Seconds[i][j] <= 0 {
			continue
		}
		per := r.Seconds[i][j] / float64(n)
		if lo == 0 || per < lo {
			lo = per
		}
		if per > hi {
			hi = per
		}
	}
	if lo == 0 {
		return 0
	}
	return hi / lo
}
