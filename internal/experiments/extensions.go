package experiments

import (
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/eval"
	"repro/internal/hmm"
	"repro/internal/loggen"
	"repro/internal/markov"
	"repro/internal/model"
	"repro/internal/query"
	"repro/internal/session"
)

// The extension experiments cover the paper's future-work directions
// (Sec. VI): the HMM with hidden intent states, the cluster-based
// click-through family from related work (Sec. II), and the retraining
// frequency analysis for adapting to new query trends.

// ExtensionResult compares the extensions against MVMM on the standard
// accuracy/coverage axes.
type ExtensionResult struct {
	Models   []string
	NDCG5    []float64
	Coverage []float64
}

// Extensions trains the HMM and the click-through clustering recommender on
// the corpus and evaluates them beside MVMM and Adjacency.
func Extensions(c *Corpus, m *Models) (ExtensionResult, error) {
	var res ExtensionResult

	hm, err := hmm.Train(c.TrainAgg, hmm.DefaultConfig(c.Vocab()))
	if err != nil {
		return res, fmt.Errorf("experiments: training HMM: %w", err)
	}

	// The click graph needs raw records; regenerate the (deterministic)
	// training stream.
	gen, err := loggen.New(c.Cfg.Gen)
	if err != nil {
		return res, err
	}
	graph := cluster.NewClickGraph(c.Dict)
	for i := 0; i < c.Cfg.TrainSessions; i++ {
		ls := gen.Session()
		for _, rec := range gen.Records(ls) {
			graph.Add(rec)
		}
	}
	cl := cluster.Build(graph, cluster.DefaultConfig())

	ctxs := c.TestContexts(0, 3000)
	covCtxs := c.CoverageContexts(0, 0)
	for _, p := range []model.Predictor{m.MVMM, m.Adj, hm, cl} {
		res.Models = append(res.Models, p.Name())
		res.NDCG5 = append(res.NDCG5, eval.MeanNDCG(p, c.GroundTruth, ctxs, 5).NDCG)
		res.Coverage = append(res.Coverage, eval.Coverage(p, covCtxs))
	}
	return res, nil
}

// Render prints the extension comparison.
func (r ExtensionResult) Render(w io.Writer) {
	heading(w, "Extension — future-work models vs MVMM (Sec. VI / Sec. II)")
	rows := [][]string{}
	for i, name := range r.Models {
		rows = append(rows, []string{name, f4(r.NDCG5[i]), f4(r.Coverage[i])})
	}
	renderTable(w, []string{"Model", "NDCG@5", "coverage"}, rows)
	fmt.Fprintln(w, "  (paper's conjecture: hidden-state models might raise the bar; the cluster-")
	fmt.Fprintln(w, "   based family suggests replacements, not next queries — see Sec. II)")
}

// DriftResult records model quality on successive post-training time slices
// with and without retraining — the paper's "frequency of retraining"
// future-work analysis.
type DriftResult struct {
	Slices    int
	Stale     []float64 // NDCG@5 of the model trained once, per slice
	Retrained []float64 // NDCG@5 of a model retrained on all data so far
	StaleCov  []float64
	RetrCov   []float64
}

// Drift simulates deployment over time: train on the original window, then
// stream `slices` further windows (with the generator's late-onset topics
// active, i.e. trends the stale model never saw) and compare the stale model
// against one retrained cumulatively before each slice.
func Drift(c *Corpus, slices, sessionsPerSlice int) (DriftResult, error) {
	res := DriftResult{Slices: slices}
	gen, err := loggen.New(c.Cfg.Gen)
	if err != nil {
		return res, err
	}
	// Replay the training phase to position the stream, then enter the
	// drifted regime.
	for i := 0; i < c.Cfg.TrainSessions; i++ {
		gen.Session()
	}
	gen.EnterTestPhase()

	vocab := c.Vocab()
	stale := markov.NewVMM(c.TrainAgg, markov.VMMConfig{Epsilon: 0.05, Vocab: vocab})
	seenSoFar := append([]query.Session(nil), c.TrainAgg...)

	for s := 0; s < slices; s++ {
		// One slice of fresh traffic.
		seg := session.NewSegmenter(c.Dict, 0)
		for i := 0; i < sessionsPerSlice; i++ {
			ls := gen.Session()
			for _, rec := range gen.Records(ls) {
				seg.Add(rec)
			}
		}
		agg := session.Aggregate(seg.Flush())
		reduced, _ := session.Reduce(agg, c.Cfg.ReductionThreshold)
		gt := session.BuildGroundTruth(agg, 5)
		ctxs := gt.Contexts(0)
		if len(ctxs) > 2500 {
			ctxs = ctxs[:2500]
		}

		retrained := markov.NewVMM(seenSoFar, markov.VMMConfig{Epsilon: 0.05, Vocab: c.Dict.Len()})
		res.Stale = append(res.Stale, eval.MeanNDCG(stale, gt, ctxs, 5).NDCG)
		res.Retrained = append(res.Retrained, eval.MeanNDCG(retrained, gt, ctxs, 5).NDCG)
		res.StaleCov = append(res.StaleCov, eval.Coverage(stale, ctxs))
		res.RetrCov = append(res.RetrCov, eval.Coverage(retrained, ctxs))

		// The retrained model absorbs this slice for the next round.
		seenSoFar = append(seenSoFar, reduced...)
	}
	return res, nil
}

// Render prints the drift analysis.
func (r DriftResult) Render(w io.Writer) {
	heading(w, "Extension — retraining frequency under query-trend drift (Sec. VI)")
	rows := [][]string{}
	for s := 0; s < r.Slices; s++ {
		rows = append(rows, []string{
			fmt.Sprintf("slice %d", s+1),
			f4(r.Stale[s]), f4(r.StaleCov[s]),
			f4(r.Retrained[s]), f4(r.RetrCov[s]),
		})
	}
	renderTable(w, []string{"", "stale NDCG@5", "stale cov", "retrained NDCG@5", "retrained cov"}, rows)
	fmt.Fprintln(w, "  (coverage of the stale model should trail the retrained one as new")
	fmt.Fprintln(w, "   topics emerge — the cost of not retraining)")
}
