package textutil

import (
	"testing"
	"testing/quick"

	"repro/internal/query"
)

func TestLevenshteinBasics(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "abc", 0},
		{"", "abc", 3},
		{"abc", "", 3},
		{"goggle", "google", 1}, // the paper's spelling-change example
		{"kitten", "sitting", 3},
		{"smtp", "pop3", 4},
		{"a", "b", 1},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLevenshteinSymmetry(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 64 {
			a = a[:64]
		}
		if len(b) > 64 {
			b = b[:64]
		}
		return Levenshtein(a, b) == Levenshtein(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLevenshteinIdentityAndBounds(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 64 {
			a = a[:64]
		}
		if len(b) > 64 {
			b = b[:64]
		}
		d := Levenshtein(a, b)
		if (d == 0) != (a == b) {
			return false
		}
		max := len(a)
		if len(b) > max {
			max = len(b)
		}
		diff := len(a) - len(b)
		if diff < 0 {
			diff = -diff
		}
		return d >= diff && d <= max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLevenshteinTriangleInequality(t *testing.T) {
	f := func(a, b, c string) bool {
		if len(a) > 32 {
			a = a[:32]
		}
		if len(b) > 32 {
			b = b[:32]
		}
		if len(c) > 32 {
			c = c[:32]
		}
		return Levenshtein(a, c) <= Levenshtein(a, b)+Levenshtein(b, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func toSeq(raw []uint8) query.Seq {
	s := make(query.Seq, len(raw))
	for i, v := range raw {
		s[i] = query.ID(v)
	}
	return s
}

func TestSeqEditDistanceBasics(t *testing.T) {
	cases := []struct {
		a, b query.Seq
		want int
	}{
		{nil, nil, 0},
		{query.Seq{1, 2, 3}, query.Seq{1, 2, 3}, 0},
		{query.Seq{1, 2, 3}, query.Seq{2, 3}, 1},
		{query.Seq{1, 2, 3}, nil, 3},
		{query.Seq{1, 2}, query.Seq{3, 4}, 2},
		{query.Seq{1, 2, 3}, query.Seq{1, 9, 3}, 1},
	}
	for _, c := range cases {
		if got := SeqEditDistance(c.a, c.b); got != c.want {
			t.Errorf("SeqEditDistance(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestSeqEditDistanceSymmetry(t *testing.T) {
	f := func(a, b []uint8) bool {
		if len(a) > 24 {
			a = a[:24]
		}
		if len(b) > 24 {
			b = b[:24]
		}
		sa, sb := toSeq(a), toSeq(b)
		return SeqEditDistance(sa, sb) == SeqEditDistance(sb, sa)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSuffixDistanceFastPath(t *testing.T) {
	ctx := query.Seq{1, 2, 3, 4}
	if got := SuffixDistance(ctx, query.Seq{3, 4}); got != 2 {
		t.Fatalf("SuffixDistance suffix case = %d, want 2", got)
	}
	if got := SuffixDistance(ctx, ctx); got != 0 {
		t.Fatalf("SuffixDistance identical = %d, want 0", got)
	}
	if got := SuffixDistance(ctx, nil); got != 4 {
		t.Fatalf("SuffixDistance empty state = %d, want 4", got)
	}
}

func TestSuffixDistanceFallbackMatchesEditDistance(t *testing.T) {
	ctx := query.Seq{1, 2, 3}
	state := query.Seq{9, 3} // not a suffix
	if got, want := SuffixDistance(ctx, state), SeqEditDistance(ctx, state); got != want {
		t.Fatalf("SuffixDistance fallback = %d, want %d", got, want)
	}
}

func TestSuffixDistanceAgreesWithEditDistanceOnSuffixes(t *testing.T) {
	f := func(raw []uint8, cut uint8) bool {
		if len(raw) > 24 {
			raw = raw[:24]
		}
		s := toSeq(raw)
		if len(s) == 0 {
			return true
		}
		k := int(cut) % (len(s) + 1)
		suf := s[len(s)-k:]
		return SuffixDistance(s, suf) == SeqEditDistance(s, suf)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
