// Package textutil provides string and sequence distance utilities used by
// the MVMM mixture weighting (edit distance between a user context and a
// model's matched state) and by the log simulator (typo generation).
package textutil

import "repro/internal/query"

// Levenshtein returns the edit distance between two strings, counting
// insertions, deletions and substitutions at unit cost. It operates on bytes,
// which is sufficient for the ASCII query universe of the simulator.
func Levenshtein(a, b string) int {
	if a == b {
		return 0
	}
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// SeqEditDistance returns the Levenshtein distance between two query
// sequences, treating each query ID as an atomic symbol. This is the d(T)
// of the paper's Eq. (4): the distance between the observed user context s
// and the best-matching state s_D of a D-bounded VMM.
func SeqEditDistance(a, b query.Seq) int {
	if a.Equal(b) {
		return 0
	}
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// SuffixDistance returns the number of leading queries of context that are
// not covered by state, assuming state is a suffix of context. When state is
// indeed a suffix this equals the sequence edit distance, but it is O(1).
// It falls back to SeqEditDistance when state is not a suffix.
func SuffixDistance(context, state query.Seq) int {
	if context.HasSuffix(state) {
		return len(context) - len(state)
	}
	return SeqEditDistance(context, state)
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
