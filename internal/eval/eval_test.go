package eval

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/markov"
	"repro/internal/model"
	"repro/internal/pairwise"
	"repro/internal/query"
	"repro/internal/session"
)

func TestNDCGPerfectListScoresOne(t *testing.T) {
	ratings := []int{5, 4, 3, 2, 1}
	if got := NDCG(ratings, ratings, 5); math.Abs(got-1) > 1e-12 {
		t.Fatalf("perfect NDCG = %v", got)
	}
}

func TestNDCGEmptyAndZeroRatings(t *testing.T) {
	if got := NDCG([]int{0, 0}, []int{5, 4}, 5); got != 0 {
		t.Fatalf("all-zero ratings NDCG = %v", got)
	}
	if got := NDCG(nil, nil, 5); got != 0 {
		t.Fatalf("empty NDCG = %v", got)
	}
}

func TestNDCGPositionDiscount(t *testing.T) {
	// The top ground-truth query at rank 1 beats it at rank 2.
	ideal := []int{5}
	atTop := NDCG([]int{5, 0}, ideal, 5)
	atSecond := NDCG([]int{0, 5}, ideal, 5)
	if atTop <= atSecond {
		t.Fatalf("discount violated: rank1 %v <= rank2 %v", atTop, atSecond)
	}
	if math.Abs(atTop-1) > 1e-12 {
		t.Fatalf("single relevant at top = %v, want 1", atTop)
	}
	// Eq. 11 with log10: rating 5 at position 2 has DCG 31/log10(3).
	want := (31 / math.Log10(3)) / (31 / math.Log10(2))
	if math.Abs(atSecond-want) > 1e-12 {
		t.Fatalf("rank-2 NDCG = %v, want %v", atSecond, want)
	}
}

func TestNDCGAtCutoff(t *testing.T) {
	ideal := []int{5, 4}
	// A relevant item beyond the cutoff contributes nothing.
	if got := NDCG([]int{0, 0, 5}, ideal, 2); got != 0 {
		t.Fatalf("beyond-cutoff NDCG@2 = %v", got)
	}
}

func trainTest() ([]query.Session, *session.GroundTruth) {
	train := []query.Session{
		{Queries: query.Seq{1, 2, 3}, Count: 20},
		{Queries: query.Seq{1, 2, 4}, Count: 10},
		{Queries: query.Seq{2, 3}, Count: 5},
	}
	test := []query.Session{
		{Queries: query.Seq{1, 2, 3}, Count: 9},
		{Queries: query.Seq{1, 2, 4}, Count: 3},
	}
	return train, session.BuildGroundTruth(test, 5)
}

func TestMeanNDCGRewardsCorrectModel(t *testing.T) {
	train, gt := trainTest()
	vmm := markov.NewVMM(train, markov.VMMConfig{Epsilon: 0.0, Vocab: 5})
	contexts := gt.Contexts(0)
	res := MeanNDCG(vmm, gt, contexts, 5)
	if res.Contexts == 0 {
		t.Fatal("no contexts scored")
	}
	if res.NDCG <= 0.5 {
		t.Fatalf("NDCG = %v, expected a high score for a model trained on the same distribution", res.NDCG)
	}
}

func TestMeanNDCGSkipsUncovered(t *testing.T) {
	train, gt := trainTest()
	ngram := markov.NewNGram(train, 5)
	// Add a context the N-gram cannot cover.
	contexts := append(gt.Contexts(0), query.Seq{9, 9, 9})
	res := MeanNDCG(ngram, gt, contexts, 5)
	if res.Contexts != len(contexts)-1 {
		t.Fatalf("scored %d contexts, want %d", res.Contexts, len(contexts)-1)
	}
}

func TestCoverage(t *testing.T) {
	train, _ := trainTest()
	adj := pairwise.NewAdjacency(train, 5)
	contexts := []query.Seq{{1}, {2}, {99}, {3}}
	// Covered: [1] (followers 2), [2] (followers 3,4). Not: [99] unseen,
	// [3] final-position only.
	if got := Coverage(adj, contexts); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("coverage = %v, want 0.5", got)
	}
	if got := Coverage(adj, nil); got != 0 {
		t.Fatalf("coverage of empty set = %v", got)
	}
}

func TestTrainStats(t *testing.T) {
	train := []query.Session{
		{Queries: query.Seq{1, 2}, Count: 3},
		{Queries: query.Seq{7}, Count: 9},
	}
	ts := NewTrainStats(train)
	if !ts.Seen(1) || !ts.Seen(7) || ts.Seen(99) {
		t.Fatal("Seen wrong")
	}
	if !ts.InMultiQuerySession(1) || ts.InMultiQuerySession(7) {
		t.Fatal("InMultiQuerySession wrong")
	}
	if !ts.HasFollower(1) || ts.HasFollower(2) || ts.HasFollower(7) {
		t.Fatal("HasFollower wrong")
	}
}

func TestClassifyReasons(t *testing.T) {
	train, _ := trainTest()
	ts := NewTrainStats(append(train, query.Session{Queries: query.Seq{8}, Count: 2}))
	adj := pairwise.NewAdjacency(train, 6)
	ngram := markov.NewNGram(train, 6)

	if r := ts.Classify(adj, query.Seq{1}, false); r != ReasonCovered {
		t.Fatalf("covered context classified %v", r)
	}
	if r := ts.Classify(adj, query.Seq{99}, false); r != ReasonNewQuery {
		t.Fatalf("new query classified %v", r)
	}
	if r := ts.Classify(adj, query.Seq{8}, false); r != ReasonSingletonOnly {
		t.Fatalf("singleton query classified %v", r)
	}
	if r := ts.Classify(adj, query.Seq{3}, false); r != ReasonLastPosOnly {
		t.Fatalf("last-position query classified %v", r)
	}
	// N-gram reason 4: last query trainable but full context untrained.
	if r := ts.Classify(ngram, query.Seq{9, 1}, true); r != ReasonUntrainedGram {
		t.Fatalf("untrained n-gram context classified %v", r)
	}
}

func TestReasonCounts(t *testing.T) {
	train, _ := trainTest()
	ts := NewTrainStats(train)
	adj := pairwise.NewAdjacency(train, 6)
	contexts := []query.Seq{{1}, {99}, {3}}
	counts := ReasonCounts(adj, ts, contexts, false)
	if counts[ReasonCovered] != 1 || counts[ReasonNewQuery] != 1 || counts[ReasonLastPosOnly] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestLogLossOrdersModels(t *testing.T) {
	train, _ := trainTest()
	test := []query.Session{
		{Queries: query.Seq{1, 2, 3}, Count: 1},
		{Queries: query.Seq{2, 3}, Count: 1},
	}
	vmm := markov.NewVMM(train, markov.VMMConfig{Epsilon: 0.0, Vocab: 5})
	// A deliberately blind model: uniform over vocabulary.
	uniform := uniformModel{vocab: 5}
	lVMM := LogLoss(vmm, test, 5)
	lUni := LogLoss(uniform, test, 5)
	if lVMM >= lUni {
		t.Fatalf("trained model log-loss %v not better than uniform %v", lVMM, lUni)
	}
	if lVMM < 0 {
		t.Fatalf("log-loss negative: %v", lVMM)
	}
	if got := LogLoss(vmm, nil, 5); got != 0 {
		t.Fatalf("log-loss on empty test = %v", got)
	}
}

type uniformModel struct{ vocab int }

func (u uniformModel) Name() string { return "uniform" }
func (u uniformModel) Predict(ctx query.Seq, n int) []model.Prediction {
	return nil
}
func (u uniformModel) Prob(ctx query.Seq, q query.ID) float64 { return 1 / float64(u.vocab) }
func (u uniformModel) Covers(ctx query.Seq) bool              { return true }

func TestContextEntropyDecreases(t *testing.T) {
	// Build sessions where context sharply disambiguates: the Fig. 2 shape.
	sessions := []query.Session{
		{Queries: query.Seq{1, 5, 6}, Count: 50},
		{Queries: query.Seq{2, 5, 7}, Count: 50},
		{Queries: query.Seq{3, 5, 8}, Count: 50},
		{Queries: query.Seq{4, 5, 9}, Count: 50},
	}
	h := ContextEntropy(sessions, 2)
	if len(h) != 3 {
		t.Fatalf("entropy vector length %d", len(h))
	}
	if !(h[0] > h[2]) {
		t.Fatalf("entropy did not drop with context: %v", h)
	}
	for _, v := range h {
		if v < 0 {
			t.Fatalf("negative entropy: %v", h)
		}
	}
}

func TestContextEntropyEmptySessions(t *testing.T) {
	h := ContextEntropy(nil, 3)
	for _, v := range h {
		if v != 0 {
			t.Fatalf("entropy on empty data = %v", h)
		}
	}
}

type fakeOracle map[string]bool

func (f fakeOracle) Related(a, b string) bool { return f[a+"|"+b] }

func TestUserStudyPrecisionRecall(t *testing.T) {
	d := query.NewDict()
	qa, qb, qc := d.Intern("alpha"), d.Intern("beta"), d.Intern("gamma")
	train := []query.Session{
		{Queries: query.Seq{qa, qb}, Count: 10},
		{Queries: query.Seq{qa, qc}, Count: 5},
	}
	adj := pairwise.NewAdjacency(train, 3)
	oracle := fakeOracle{"alpha|beta": true} // beta approved, gamma rejected
	contexts := []query.Seq{{qa}}
	res := UserStudy([]model.Predictor{adj}, contexts, d, oracle, nil, 5)
	m := res.Methods[0]
	if m.Predicted != 2 {
		t.Fatalf("predicted = %d, want 2", m.Predicted)
	}
	if m.Approved != 1 {
		t.Fatalf("approved = %d, want 1", m.Approved)
	}
	if p := m.Precision(); math.Abs(p-0.5) > 1e-12 {
		t.Fatalf("precision = %v, want 0.5", p)
	}
	if res.UniqueGroundTruth != 1 {
		t.Fatalf("pooled ground truth = %d, want 1", res.UniqueGroundTruth)
	}
	if r := res.Recall(0); math.Abs(r-1) > 1e-12 {
		t.Fatalf("recall = %v, want 1", r)
	}
	// Position-wise: beta is ranked first (count 10 > 5) and approved.
	if p := m.PrecisionAt(1); math.Abs(p-1) > 1e-12 {
		t.Fatalf("precision@1 = %v, want 1", p)
	}
	if p := m.PrecisionAt(2); p != 0 {
		t.Fatalf("precision@2 = %v, want 0", p)
	}
	if p := m.PrecisionAt(9); p != 0 {
		t.Fatalf("precision beyond topN = %v", p)
	}
}

func TestUserStudyGroundTruthApproves(t *testing.T) {
	d := query.NewDict()
	qa, qb := d.Intern("a"), d.Intern("b")
	train := []query.Session{{Queries: query.Seq{qa, qb}, Count: 10}}
	adj := pairwise.NewAdjacency(train, 2)
	gt := session.BuildGroundTruth([]query.Session{{Queries: query.Seq{qa, qb}, Count: 4}}, 5)
	// Without an oracle, behavioural ground truth decides approval.
	res := UserStudy([]model.Predictor{adj}, []query.Seq{{qa}}, d, nil, gt, 5)
	if res.Methods[0].Approved != 1 {
		t.Fatalf("ground-truth follower not approved: %+v", res.Methods[0])
	}
	// With an all-rejecting oracle, ground truth is ignored.
	res = UserStudy([]model.Predictor{adj}, []query.Seq{{qa}}, d, fakeOracle{}, gt, 5)
	if res.Methods[0].Approved != 0 {
		t.Fatalf("oracle rejection overridden by ground truth: %+v", res.Methods[0])
	}
}

func TestUserStudyPoolsAcrossMethods(t *testing.T) {
	d := query.NewDict()
	qa, qb, qc := d.Intern("a"), d.Intern("b"), d.Intern("c")
	train := []query.Session{
		{Queries: query.Seq{qa, qb}, Count: 10},
		{Queries: query.Seq{qa, qc}, Count: 10},
		{Queries: query.Seq{qc, qa, qb}, Count: 2},
	}
	adj := pairwise.NewAdjacency(train, 3)
	co := pairwise.NewCooccurrence(train, 3)
	oracle := fakeOracle{"a|b": true, "a|c": true}
	res := UserStudy([]model.Predictor{adj, co}, []query.Seq{{qa}}, d, oracle, nil, 5)
	// Both methods approve b and c for context [a]: pooled unique = 2.
	if res.UniqueGroundTruth != 2 {
		t.Fatalf("pooled = %d, want 2", res.UniqueGroundTruth)
	}
	for i := range res.Methods {
		if r := res.Recall(i); r <= 0 || r > 1 {
			t.Fatalf("recall[%d] = %v", i, r)
		}
	}
}

func TestIdealRatings(t *testing.T) {
	gt := session.BuildGroundTruth([]query.Session{
		{Queries: query.Seq{1, 2}, Count: 5},
		{Queries: query.Seq{1, 3}, Count: 2},
	}, 5)
	got := IdealRatings(gt, query.Seq{1})
	if len(got) != 2 || got[0] != 5 || got[1] != 4 {
		t.Fatalf("ideal ratings = %v", got)
	}
}

func TestNDCGSwapHigherRatedEarlierNeverHurts(t *testing.T) {
	// Moving a higher-rated item to an earlier position never lowers NDCG.
	f := func(raw [5]uint8) bool {
		ratings := make([]int, 5)
		for i, v := range raw {
			ratings[i] = int(v % 6)
		}
		ideal := append([]int(nil), ratings...)
		sort.Sort(sort.Reverse(sort.IntSlice(ideal)))
		base := NDCG(ratings, ideal, 5)
		for i := 0; i < 4; i++ {
			if ratings[i] < ratings[i+1] {
				swapped := append([]int(nil), ratings...)
				swapped[i], swapped[i+1] = swapped[i+1], swapped[i]
				if NDCG(swapped, ideal, 5) < base-1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNDCGBoundedByOne(t *testing.T) {
	f := func(raw [5]uint8) bool {
		ratings := make([]int, 5)
		for i, v := range raw {
			ratings[i] = int(v % 6)
		}
		ideal := append([]int(nil), ratings...)
		sort.Sort(sort.Reverse(sort.IntSlice(ideal)))
		n := NDCG(ratings, ideal, 5)
		return n >= 0 && n <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
