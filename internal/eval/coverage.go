package eval

import (
	"repro/internal/model"
	"repro/internal/query"
)

// Coverage returns the fraction of test contexts the model can predict for
// (Sec. V.C.1 / Figs. 10–11).
func Coverage(p model.Predictor, contexts []query.Seq) float64 {
	if len(contexts) == 0 {
		return 0
	}
	covered := 0
	for _, ctx := range contexts {
		if p.Covers(ctx) {
			covered++
		}
	}
	return float64(covered) / float64(len(contexts))
}

// Reason classifies why a model could not predict for a test context —
// the paper's Table VI taxonomy, keyed on the user's current (last context)
// query, whose training history is what each model's coverage mechanically
// depends on.
type Reason int

// Table VI reasons.
const (
	ReasonCovered       Reason = iota // not unpredictable
	ReasonNewQuery                    // (1) the current query never occurs in training
	ReasonSingletonOnly               // (2) it occurs only in length-1 training sessions
	ReasonLastPosOnly                 // (3) it occurs only at the final position of sessions
	ReasonUntrainedGram               // (4) N-gram only: the full context is not a trained state
	numReasons
)

// ReasonNames gives display labels in Reason order.
var ReasonNames = [numReasons]string{
	"covered",
	"(1) new query",
	"(2) only in length-1 sessions",
	"(3) only at last session position",
	"(4) context not a trained N-gram state",
}

func (r Reason) String() string {
	if int(r) < len(ReasonNames) {
		return ReasonNames[r]
	}
	return "unknown"
}

// TrainStats records, per query, the training-side facts Table VI's
// taxonomy needs.
type TrainStats struct {
	seen         map[query.ID]struct{} // occurs anywhere in training
	inMultiQuery map[query.ID]struct{} // occurs in a session of length >= 2
	hasFollower  map[query.ID]struct{} // occurs at a non-final position
}

// NewTrainStats scans aggregated training sessions.
func NewTrainStats(sessions []query.Session) *TrainStats {
	ts := &TrainStats{
		seen:         make(map[query.ID]struct{}),
		inMultiQuery: make(map[query.ID]struct{}),
		hasFollower:  make(map[query.ID]struct{}),
	}
	for _, s := range sessions {
		for i, q := range s.Queries {
			ts.seen[q] = struct{}{}
			if len(s.Queries) >= 2 {
				ts.inMultiQuery[q] = struct{}{}
			}
			if i < len(s.Queries)-1 {
				ts.hasFollower[q] = struct{}{}
			}
		}
	}
	return ts
}

// Seen reports whether q occurs anywhere in training.
func (ts *TrainStats) Seen(q query.ID) bool {
	_, ok := ts.seen[q]
	return ok
}

// InMultiQuerySession reports whether q occurs in a session of length >= 2.
func (ts *TrainStats) InMultiQuerySession(q query.ID) bool {
	_, ok := ts.inMultiQuery[q]
	return ok
}

// HasFollower reports whether q ever precedes another query in training.
func (ts *TrainStats) HasFollower(q query.ID) bool {
	_, ok := ts.hasFollower[q]
	return ok
}

// Classify assigns the Table VI reason for a model's failure to cover ctx.
// isNGram enables reason (4). Covered contexts return ReasonCovered.
func (ts *TrainStats) Classify(p model.Predictor, ctx query.Seq, isNGram bool) Reason {
	if p.Covers(ctx) {
		return ReasonCovered
	}
	if len(ctx) == 0 {
		return ReasonNewQuery
	}
	last := ctx.Last()
	switch {
	case !ts.Seen(last):
		return ReasonNewQuery
	case !ts.InMultiQuerySession(last):
		return ReasonSingletonOnly
	case !ts.HasFollower(last):
		return ReasonLastPosOnly
	case isNGram:
		return ReasonUntrainedGram
	default:
		// The last query has followers yet the model still fails — for the
		// suffix-matching models this cannot happen; attribute to (3) as
		// the closest mechanical cause.
		return ReasonLastPosOnly
	}
}

// ReasonCounts tallies Table VI reasons for a model over test contexts.
func ReasonCounts(p model.Predictor, ts *TrainStats, contexts []query.Seq, isNGram bool) [numReasons]int {
	var counts [numReasons]int
	for _, ctx := range contexts {
		counts[ts.Classify(p, ctx, isNGram)]++
	}
	return counts
}

// NumReasons exposes the taxonomy size for table rendering.
const NumReasons = int(numReasons)
