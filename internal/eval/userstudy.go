package eval

import (
	"repro/internal/model"
	"repro/internal/query"
	"repro/internal/session"
)

// RelatednessOracle judges whether candidate is an appropriate
// recommendation in the context of query a — the simulated stand-in for the
// paper's 30 human labelers (see DESIGN.md §1). loggen.Universe implements
// it via the generator's latent topic/relation graph.
type RelatednessOracle interface {
	Related(a, candidate string) bool
}

// MethodStudy holds one method's user-evaluation outcome (Table VIII and
// Figs. 13–14).
type MethodStudy struct {
	Name           string
	Predicted      int   // total predicted queries across contexts
	Approved       int   // predictions approved by the oracle
	PredictedAtPos []int // per rank position 1..TopN
	ApprovedAtPos  []int
	recallHits     int // approved predictions counted against the pooled set
}

// Precision returns approved/predicted (Fig. 13a).
func (m MethodStudy) Precision() float64 {
	if m.Predicted == 0 {
		return 0
	}
	return float64(m.Approved) / float64(m.Predicted)
}

// PrecisionAt returns the rank-j precision (Fig. 14), 1-based.
func (m MethodStudy) PrecisionAt(j int) float64 {
	if j < 1 || j > len(m.PredictedAtPos) || m.PredictedAtPos[j-1] == 0 {
		return 0
	}
	return float64(m.ApprovedAtPos[j-1]) / float64(m.PredictedAtPos[j-1])
}

// StudyResult is the complete simulated user evaluation.
type StudyResult struct {
	Methods []MethodStudy
	// UniqueGroundTruth is the number of distinct approved (context, query)
	// pairs pooled over all methods — the paper's 9,489 figure.
	UniqueGroundTruth int
}

// Recall returns a method's recall against the pooled approved set
// (Fig. 13b).
func (r StudyResult) Recall(i int) float64 {
	if r.UniqueGroundTruth == 0 {
		return 0
	}
	return float64(r.Methods[i].recallHits) / float64(r.UniqueGroundTruth)
}

// UserStudy reproduces the Sec. V.H procedure: each method predicts top-N
// queries for every sampled context; the oracle approves a prediction when
// it is "appropriate in the context" — related to every query the user
// issued, not merely the most recent one (the paper's labelers judged
// appropriateness against the whole context) — or when it is an actual
// ground-truth follower; approved predictions pooled over all methods
// (deduplicated per context) form the user-centric ground truth for recall.
func UserStudy(methods []model.Predictor, contexts []query.Seq, dict *query.Dict,
	oracle RelatednessOracle, gt *session.GroundTruth, topN int) StudyResult {
	res := StudyResult{Methods: make([]MethodStudy, len(methods))}
	type pair struct {
		ctx string
		q   query.ID
	}
	pooled := make(map[pair]struct{})
	perMethodApproved := make([]map[pair]struct{}, len(methods))
	for i, m := range methods {
		res.Methods[i] = MethodStudy{
			Name:           m.Name(),
			PredictedAtPos: make([]int, topN),
			ApprovedAtPos:  make([]int, topN),
		}
		perMethodApproved[i] = make(map[pair]struct{})
	}
	for _, ctx := range contexts {
		ctxStrings := make([]string, len(ctx))
		for k, q := range ctx {
			ctxStrings[k] = dict.String(q)
		}
		key := ctx.Key()
		for i, m := range methods {
			preds := m.Predict(ctx, topN)
			for j, p := range preds {
				res.Methods[i].Predicted++
				res.Methods[i].PredictedAtPos[j]++
				// The labelers judged semantic appropriateness only; they
				// never saw the behavioural ground truth. When an oracle is
				// supplied it is therefore the sole judge, applied to the
				// user's current (most recent) query — matching the paper's
				// approval examples ("Verizon" after "GE", "Hertz car
				// rental" after "budget car rental") — falling back to the
				// preceding query when the current one is too ambiguous to
				// decide (the paper's "Java" case: a labeler consults the
				// context). The gt fallback exists for data-only callers
				// with no oracle available.
				approved := false
				if oracle != nil {
					cand := dict.String(p.Query)
					approved = oracle.Related(ctxStrings[len(ctxStrings)-1], cand)
					if !approved && len(ctxStrings) >= 2 {
						approved = oracle.Related(ctxStrings[len(ctxStrings)-2], cand)
					}
				} else if gt != nil && gt.Rating(ctx, p.Query) > 0 {
					approved = true
				}
				if approved {
					res.Methods[i].Approved++
					res.Methods[i].ApprovedAtPos[j]++
					pr := pair{ctx: key, q: p.Query}
					pooled[pr] = struct{}{}
					perMethodApproved[i][pr] = struct{}{}
				}
			}
		}
	}
	res.UniqueGroundTruth = len(pooled)
	for i := range methods {
		res.Methods[i].recallHits = len(perMethodApproved[i])
	}
	return res
}
