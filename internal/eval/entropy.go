package eval

import (
	"repro/internal/markov"
	"repro/internal/query"
)

// ContextEntropy computes the Fig. 2 curve: the average prediction entropy
// of the next query given contexts of each length 0..maxLen. Length 0 is
// the entropy of the unconditional next-query distribution; for length
// L >= 1 it is the frequency-weighted mean entropy of the follower
// distribution of each distinct length-L context (session prefixes, per the
// Sec. V.A.5 context derivation). Entropy is in log base 10.
func ContextEntropy(sessions []query.Session, maxLen int) []float64 {
	out := make([]float64, maxLen+1)

	// Length 0: one distribution over all predicted queries.
	marginal := markov.NewDist()
	for _, s := range sessions {
		for i := 1; i < len(s.Queries); i++ {
			marginal.Add(s.Queries[i], s.Count)
		}
	}
	out[0] = marginal.Entropy()

	for l := 1; l <= maxLen; l++ {
		dists := make(map[string]*markov.Dist)
		for _, s := range sessions {
			if len(s.Queries) <= l {
				continue
			}
			k := s.Queries[:l].Key()
			d := dists[k]
			if d == nil {
				d = markov.NewDist()
				dists[k] = d
			}
			d.Add(s.Queries[l], s.Count)
		}
		var sum float64
		var mass uint64
		for _, d := range dists {
			sum += float64(d.Total()) * d.Entropy()
			mass += d.Total()
		}
		if mass > 0 {
			out[l] = sum / float64(mass)
		}
	}
	return out
}
