// Package eval implements the paper's evaluation stack (Secs. V.C–V.H):
// NDCG@n accuracy against test-window ground truth, prediction coverage with
// the Table VI unpredictability-reason taxonomy, the average log-loss of
// Eq. (1), the context-entropy analysis of Fig. 2, and the simulated user
// study of Sec. V.H (precision/recall and position-wise precision).
package eval

import (
	"math"

	"repro/internal/model"
	"repro/internal/query"
	"repro/internal/session"
)

// NDCG computes the Normalized Discounted Cumulative Gain at position n of
// a predicted ranking, per Eq. (11):
//
//	N(n) = Z_n · Σ_{j=1..n} (2^{r(j)} − 1) / log10(1 + j)
//
// ratings holds r(j) for each predicted position (paper weights: 5 for the
// ground truth's top query down to 1 for its fifth; 0 otherwise). ideal
// holds the ground truth's own ratings in descending order; Z_n normalises
// so a perfect list scores 1. Logs are base 10 per the paper's footnote.
func NDCG(ratings, ideal []int, n int) float64 {
	dcg := dcgAt(ratings, n)
	idcg := dcgAt(ideal, n)
	if idcg == 0 {
		return 0
	}
	return dcg / idcg
}

func dcgAt(ratings []int, n int) float64 {
	var dcg float64
	for j := 1; j <= n && j <= len(ratings); j++ {
		r := ratings[j-1]
		if r <= 0 {
			continue
		}
		dcg += (math.Pow(2, float64(r)) - 1) / math.Log10(1+float64(j))
	}
	return dcg
}

// IdealRatings returns the ground truth's own rating vector for a context:
// topN, topN-1, ..., down to 1, truncated to the number of actual followers.
func IdealRatings(gt *session.GroundTruth, ctx query.Seq) []int {
	followers := gt.Lookup(ctx)
	out := make([]int, len(followers))
	for i := range followers {
		out[i] = gt.TopN - i
	}
	return out
}

// AccuracyResult aggregates a model's NDCG over a set of test contexts.
type AccuracyResult struct {
	Model    string
	Contexts int     // contexts the model covered and was scored on
	NDCG     float64 // mean NDCG@n over covered contexts
}

// MeanNDCG evaluates a predictor on the given test contexts against ground
// truth, returning the mean NDCG@n over the contexts the model covers
// (uncovered contexts are a coverage issue, measured separately — the paper
// reports accuracy and coverage as independent axes).
func MeanNDCG(p model.Predictor, gt *session.GroundTruth, contexts []query.Seq, n int) AccuracyResult {
	res := AccuracyResult{Model: p.Name()}
	var sum float64
	for _, ctx := range contexts {
		preds := p.Predict(ctx, n)
		if preds == nil {
			continue
		}
		ratings := make([]int, len(preds))
		for i, pr := range preds {
			ratings[i] = gt.Rating(ctx, pr.Query)
		}
		sum += NDCG(ratings, IdealRatings(gt, ctx), n)
		res.Contexts++
	}
	if res.Contexts > 0 {
		res.NDCG = sum / float64(res.Contexts)
	}
	return res
}

// LogLoss computes the Eq. (1) average log-loss rate of a model over test
// sequences: the negative mean per-sequence average of log10 P̂(q_j | prefix),
// for sequences of length >= 2. Zero-probability events are floored at
// 1/(10·vocab) so a single uncovered step yields a large but finite loss.
func LogLoss(p model.Predictor, sequences []query.Session, vocab int) float64 {
	floor := 1.0 / (10 * float64(vocab))
	if vocab <= 0 {
		floor = 1e-9
	}
	var total float64
	var count int
	for _, s := range sequences {
		if len(s.Queries) < 2 {
			continue
		}
		var seqLoss float64
		for j := 1; j < len(s.Queries); j++ {
			pr := p.Prob(s.Queries[:j], s.Queries[j])
			if pr < floor {
				pr = floor
			}
			seqLoss += math.Log10(pr)
		}
		total += seqLoss / float64(len(s.Queries))
		count++
	}
	if count == 0 {
		return 0
	}
	return -total / float64(count)
}
