// Package repro is a from-scratch Go reproduction of "Web Query
// Recommendation via Sequential Query Prediction" (He, Jiang, Liao, Hoi,
// Chang, Lim, Li — ICDE 2009).
//
// The library implements the paper's complete system: the search-log
// substrate (synthetic generator + raw-record format), the session pipeline
// (30-minute segmentation, aggregation, reduction, context derivation), the
// three sequential prediction models (variable-length N-gram, VMM via
// Prediction Suffix Trees, and the MVMM mixture contribution), the two
// pair-wise baselines (Adjacency, Co-occurrence), the evaluation stack
// (NDCG, coverage, entropy, log-loss, simulated user study), and a benchmark
// harness regenerating every table and figure of the paper's evaluation
// section.
//
// The serving layer turns the paper's "suitable for real-time query
// recommendation" conclusion into a production-shaped subsystem:
// internal/serve exposes single and batch suggestion endpoints with
// metrics, panic recovery and hot model reload; internal/cache fronts the
// model with a sharded LRU keyed on interned context IDs; cmd/serve runs
// the server with SIGHUP/POST-reload and graceful shutdown; cmd/loadgen
// replays power-law synthetic traffic against it.
//
// The model itself is split into a build phase and a serve phase. Training
// produces the interpreted map-based MVMM (internal/markov) — the mutable
// build artifact that evaluation code walks and files persist. Before
// serving, internal/compiled flattens the whole mixture into a single
// merged Prediction Suffix Tree in CSR arrays (the paper's Table VII
// single-PST deployment note), with per-node component bitmasks,
// escape-chain counts and precomputed smoothed probabilities: one trie
// descent per request, zero steady-state allocations, and predictions a
// seeded property test holds to the interpreted mixture's — identical IDs
// and order, scores within 1e-12. PredictBatch extends the same engine to
// whole batches: contexts are sorted by their reversed form so sibling
// contexts share descent work, and in-batch duplicates are scored once.
//
// The compiled form also has an mmap-able persistent encoding (CPS3): every
// CSR array stored as fixed-width little-endian values at aligned offsets,
// so a V003 model file is loaded by mapping it — core.LoadPath slices the
// arrays straight out of the page cache with no decoding, no
// model-proportional allocation, lazy page-in, and read-only sharing across
// server processes. Platforms without mmap or little-endian layout decode
// the same blob portably; V001/V002 files still load and recompile.
//
// Entry points: internal/core for the end-to-end recommender API,
// cmd/experiments for the full evaluation harness, and bench_test.go for the
// per-table/figure benchmarks. See README.md, DESIGN.md and EXPERIMENTS.md.
package repro
