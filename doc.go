// Package repro is a from-scratch Go reproduction of "Web Query
// Recommendation via Sequential Query Prediction" (He, Jiang, Liao, Hoi,
// Chang, Lim, Li — ICDE 2009), grown into a production-shaped serving
// system. See ARCHITECTURE.md for the full paper-to-code map and the
// on-disk format evolution.
//
// # The paper
//
// The library implements the paper's complete system: the search-log
// substrate (synthetic generator + raw-record format), the session pipeline
// (30-minute segmentation, aggregation, reduction, context derivation), the
// three sequential prediction models (variable-length N-gram, VMM via
// Prediction Suffix Trees, and the MVMM mixture contribution), the two
// pair-wise baselines (Adjacency, Co-occurrence), the evaluation stack
// (NDCG, coverage, entropy, log-loss, simulated user study), and a
// benchmark harness regenerating every table and figure of the paper's
// evaluation section (internal/experiments, cmd/experiments).
//
// # Build phase versus serve phase
//
// Training produces the interpreted map-based MVMM (internal/markov) — the
// mutable build artifact that evaluation code walks and files persist.
// Before serving, internal/compiled flattens the whole mixture into a
// single merged Prediction Suffix Tree in CSR arrays (the paper's Table VII
// single-PST deployment note): per-node component bitmasks, escape-chain
// counts and precomputed smoothed probabilities. One trie descent per
// request, zero steady-state allocations, and predictions a seeded property
// test holds to the interpreted mixture's — identical IDs and order, scores
// within 1e-12. PredictBatch extends the same engine to whole batches,
// sharing descent work across reversed-sorted sibling contexts.
//
// # Persistent formats
//
// The compiled form has two mmap-able persistent encodings. CPS3 (inside
// QRECV003 model files) stores every CSR array as exact fixed-width
// little-endian values at aligned offsets, so core.LoadPath maps the file
// and slices the arrays out of the page cache — no decoding, lazy page-in,
// read-only sharing across processes. CPS4 (inside QRECV004, the Save
// default) keeps that contract but quantises follower probabilities to
// fixed-point uint16 against per-node float32 steps and narrows every node
// array to its needed width, shrinking the serving blob by roughly half at
// a bounded (≤ ~2e-5 absolute) probability error; Table VII reports both
// blob sizes. Platforms without mmap or little-endian layout decode the
// same blobs portably; V001–V003 files still load, and SaveAs still writes
// the exact V002/V003 forms.
//
// # Serving layer
//
// internal/serve exposes single and batch suggestion endpoints with
// metrics, panic recovery and hot model reload; internal/cache fronts the
// model with a sharded LRU keyed on interned context IDs; cmd/serve runs
// the server with SIGHUP/POST-reload and graceful shutdown; cmd/loadgen
// replays power-law synthetic traffic against it. The /suggest hot path is
// allocation-free end to end and CI gates it (make bench-json; cmd/benchjson
// enforces allocation and blob-size regression ceilings recorded in
// BENCH_serving.json).
//
// Entry points: internal/core for the end-to-end recommender API,
// cmd/experiments for the full evaluation harness, and bench_test.go for
// the per-table/figure benchmarks. See README.md and ARCHITECTURE.md.
package repro
