// Command loggen generates a synthetic search-engine log in the Table III
// raw-record format, suitable for cmd/train.
//
// Usage:
//
//	loggen -sessions 100000 -out search.log [-seed 42] [-machines 4000]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/logfmt"
	"repro/internal/loggen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("loggen: ")
	var (
		sessions = flag.Int("sessions", 100000, "number of user intent sessions to generate")
		out      = flag.String("out", "-", "output file (- for stdout)")
		seed     = flag.Int64("seed", 42, "generator seed")
		machines = flag.Int("machines", 4000, "distinct machine IDs")
		topics   = flag.Int("topics", 220, "latent topics in the query universe")
	)
	flag.Parse()

	cfg := loggen.DefaultConfig()
	cfg.Seed = *seed
	cfg.Machines = *machines
	cfg.Universe.Topics = *topics
	gen, err := loggen.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	var f *os.File
	if *out == "-" {
		f = os.Stdout
	} else {
		f, err = os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
	}
	w := logfmt.NewWriter(f)
	if _, err := gen.GenerateRecords(*sessions, w.Write); err != nil {
		log.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "loggen: wrote %d records for %d sessions (universe: %d queries)\n",
		w.Count(), *sessions, gen.Universe().NumQueries())
}
