// Command recommend serves interactive next-query recommendations from a
// model trained by cmd/train. It reads one query per line from stdin,
// maintains the running session context, and prints the top-N suggestions
// after every query — the paper's online recommendation phase.
//
// Usage:
//
//	recommend -model model.bin [-n 5]
//
// Type queries one per line; a blank line resets the session context.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("recommend: ")
	var (
		modelPath = flag.String("model", "model.bin", "model file from cmd/train")
		topN      = flag.Int("n", 5, "number of suggestions per query")
	)
	flag.Parse()

	f, err := os.Open(*modelPath)
	if err != nil {
		log.Fatal(err)
	}
	rec, err := core.Load(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "recommend: model loaded (%d known queries); enter queries, blank line resets session\n",
		rec.Dict().Len())

	var context []string
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		q := sc.Text()
		if q == "" {
			context = nil
			fmt.Println("-- session reset --")
			continue
		}
		context = append(context, q)
		suggestions := core.Recommend(rec, context, *topN)
		if len(suggestions) == 0 {
			fmt.Printf("(no suggestions for context of %d queries)\n", len(context))
			continue
		}
		for i, s := range suggestions {
			fmt.Printf("%d. %-40s %.4g\n", i+1, s.Query, s.Score)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
}
