// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON document, so the serving-path performance trajectory
// (ns/op, B/op, allocs/op per benchmark) can be diffed across PRs instead of
// living in prose. `make bench-json` writes BENCH_serving.json with it and
// CI runs the same target as a smoke check.
//
// Usage:
//
//	go test -run=NONE -bench=. -benchmem . | benchjson -out BENCH_serving.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark's parsed measurements. Standard -benchmem columns
// get first-class fields; b.ReportMetric extras land in Metrics.
type Result struct {
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"b_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Output is the whole document: environment header lines plus results keyed
// by benchmark name (GOMAXPROCS suffix stripped).
type Output struct {
	GOOS       string            `json:"goos,omitempty"`
	GOARCH     string            `json:"goarch,omitempty"`
	CPU        string            `json:"cpu,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	doc := Output{Benchmarks: make(map[string]Result)}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			name, res, err := parseBenchLine(line)
			if err != nil {
				log.Printf("skipping %q: %v", line, err)
				continue
			}
			doc.Benchmarks[name] = res
		}
		// PASS/FAIL/ok lines and test noise fall through silently.
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	if len(doc.Benchmarks) == 0 {
		log.Fatal("no benchmark lines found on stdin")
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %d benchmarks to %s", len(doc.Benchmarks), *out)
}

// parseBenchLine decodes one result line of the standard bench format:
//
//	BenchmarkName-8   12345   678.9 ns/op   10 B/op   2 allocs/op   1.0 extra-metric
func parseBenchLine(line string) (string, Result, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return "", Result{}, fmt.Errorf("want >= 4 fields, got %d", len(fields))
	}
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i] // strip the GOMAXPROCS suffix
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", Result{}, fmt.Errorf("iterations: %v", err)
	}
	res := Result{Iterations: iters}
	seenNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", Result{}, fmt.Errorf("value %q: %v", fields[i], err)
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			res.NsPerOp = val
			seenNs = true
		case "B/op":
			v := val
			res.BytesPerOp = &v
		case "allocs/op":
			v := val
			res.AllocsPerOp = &v
		default:
			if res.Metrics == nil {
				res.Metrics = make(map[string]float64)
			}
			res.Metrics[unit] = val
		}
	}
	if !seenNs {
		return "", Result{}, fmt.Errorf("no ns/op column")
	}
	return name, res, nil
}
