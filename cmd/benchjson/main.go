// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON document, so the serving-path performance trajectory
// (ns/op, B/op, allocs/op per benchmark) can be diffed across PRs instead of
// living in prose. `make bench-json` maintains BENCH_serving.json with it
// and CI runs the same target as a smoke check.
//
// The output file is a trajectory, not a snapshot: each run appends (or, for
// the same commit, replaces) a stamped entry, so perf history survives
// across PRs. Files written by the old single-snapshot format are upgraded
// in place, keeping their numbers as the first entry.
//
// The -gate flag turns the run into a regression check: after recording,
// `-gate BenchmarkServeHTTPCached=2` exits non-zero if that benchmark's
// allocs/op exceeds the given ceiling, and
// `-gate BenchmarkCompiledBlobSize:cps4-over-cps3=0.6` gates a
// b.ReportMetric value instead (the part after the colon names the metric
// unit). CI uses both to fail on serving-path allocation regressions and on
// quantised-blob size regressions.
//
// Usage:
//
//	go test -run=NONE -bench=. -benchmem . | benchjson -out BENCH_serving.json \
//	    -gate BenchmarkServeHTTPCached=2 -gate BenchmarkCompiledBlobSize:cps4-over-cps3=0.6
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"strconv"
	"strings"
)

// Result is one benchmark's parsed measurements. Standard -benchmem columns
// get first-class fields; b.ReportMetric extras land in Metrics.
type Result struct {
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"b_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Entry is one recorded run: environment header lines plus results keyed by
// benchmark name (GOMAXPROCS suffix stripped), stamped with the git commit
// it was measured at. Dirty marks a run against uncommitted changes; the
// commit stamp itself stays the clean short hash so reruns after committing
// replace the provisional entry instead of duplicating it.
type Entry struct {
	Commit     string            `json:"commit"`
	Dirty      bool              `json:"dirty,omitempty"`
	GOOS       string            `json:"goos,omitempty"`
	GOARCH     string            `json:"goarch,omitempty"`
	CPU        string            `json:"cpu,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

// Output is the whole trajectory document, oldest entry first.
type Output struct {
	Entries []Entry `json:"entries"`
}

// legacyOutput is the pre-trajectory single-snapshot layout, still readable
// so existing files upgrade in place.
type legacyOutput struct {
	GOOS       string            `json:"goos,omitempty"`
	GOARCH     string            `json:"goarch,omitempty"`
	CPU        string            `json:"cpu,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

type gateList []string

func (g *gateList) String() string     { return strings.Join(*g, ",") }
func (g *gateList) Set(v string) error { *g = append(*g, v); return nil }

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	out := flag.String("out", "", "trajectory file to update (default: print the new entry to stdout)")
	commit := flag.String("commit", "", "commit stamp for this entry (default: BENCH_COMMIT env, then git describe)")
	var gates gateList
	flag.Var(&gates, "gate", "Benchmark=maxAllocs regression gate, repeatable; exits 1 when exceeded")
	flag.Parse()

	stamp, dirty := resolveCommit(*commit)
	entry := Entry{Commit: stamp, Dirty: dirty, Benchmarks: make(map[string]Result)}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			entry.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			entry.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			entry.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			name, res, err := parseBenchLine(line)
			if err != nil {
				log.Printf("skipping %q: %v", line, err)
				continue
			}
			entry.Benchmarks[name] = res
		}
		// PASS/FAIL/ok lines and test noise fall through silently.
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	if len(entry.Benchmarks) == 0 {
		log.Fatal("no benchmark lines found on stdin")
	}

	doc := readTrajectory(*out)
	doc.upsert(entry)
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
	} else {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("recorded %d benchmarks at commit %s (%d entries in %s)",
			len(entry.Benchmarks), entry.Commit, len(doc.Entries), *out)
	}

	// The entry is recorded either way; gate failures still fail the run.
	if err := applyGates(entry, gates); err != nil {
		log.Fatal(err)
	}
}

// resolveCommit picks the entry stamp — explicit flag, BENCH_COMMIT (CI can
// pass its SHA), then `git describe --always --dirty` — and splits any
// "-dirty" marker into the separate dirty flag so the recorded commit is
// always the clean hash.
func resolveCommit(flagVal string) (string, bool) {
	if flagVal != "" {
		return splitDirty(flagVal)
	}
	if env := os.Getenv("BENCH_COMMIT"); env != "" {
		return splitDirty(env)
	}
	out, err := exec.Command("git", "describe", "--always", "--dirty").Output()
	if err == nil {
		if s := strings.TrimSpace(string(out)); s != "" {
			return splitDirty(s)
		}
	}
	return "unknown", false
}

// splitDirty strips git describe's "-dirty" suffix, reporting it separately.
func splitDirty(stamp string) (string, bool) {
	if s, ok := strings.CutSuffix(stamp, "-dirty"); ok {
		return s, true
	}
	return stamp, false
}

// readTrajectory loads the existing trajectory, upgrading legacy
// single-snapshot files into a one-entry history.
func readTrajectory(path string) *Output {
	doc := &Output{}
	if path == "" {
		return doc
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		if !os.IsNotExist(err) {
			log.Fatalf("reading %s: %v", path, err)
		}
		return doc
	}
	if err := json.Unmarshal(raw, doc); err == nil && len(doc.Entries) > 0 {
		// Entries written before the dirty flag baked "-dirty" into the
		// commit stamp; split it out so the history keys stay clean hashes.
		for i := range doc.Entries {
			if s, dirty := splitDirty(doc.Entries[i].Commit); dirty {
				doc.Entries[i].Commit, doc.Entries[i].Dirty = s, true
			}
		}
		return doc
	}
	var legacy legacyOutput
	if err := json.Unmarshal(raw, &legacy); err == nil && len(legacy.Benchmarks) > 0 {
		doc.Entries = []Entry{{
			Commit: "(pre-trajectory)", GOOS: legacy.GOOS, GOARCH: legacy.GOARCH,
			CPU: legacy.CPU, Benchmarks: legacy.Benchmarks,
		}}
		return doc
	}
	log.Fatalf("%s exists but is neither a trajectory nor a legacy snapshot; refusing to overwrite", path)
	return nil
}

// upsert appends the entry, replacing an existing entry for the same commit
// (reruns refine rather than duplicate).
func (o *Output) upsert(e Entry) {
	for i := range o.Entries {
		if o.Entries[i].Commit == e.Commit {
			o.Entries[i] = e
			return
		}
	}
	o.Entries = append(o.Entries, e)
}

// applyGates enforces `Benchmark=maxAllocs` and `Benchmark:metric=max`
// ceilings against the new entry.
func applyGates(e Entry, gates []string) error {
	for _, g := range gates {
		name, limitStr, ok := strings.Cut(g, "=")
		if !ok {
			return fmt.Errorf("malformed -gate %q (want Benchmark=maxAllocs or Benchmark:metric=max)", g)
		}
		limit, err := strconv.ParseFloat(limitStr, 64)
		if err != nil {
			return fmt.Errorf("malformed -gate limit %q: %v", limitStr, err)
		}
		name, metric, isMetric := strings.Cut(name, ":")
		res, ok := e.Benchmarks[name]
		if !ok {
			return fmt.Errorf("gate %s: benchmark missing from this run", name)
		}
		if isMetric {
			val, ok := res.Metrics[metric]
			if !ok {
				return fmt.Errorf("gate %s: metric %q missing (benchmark must b.ReportMetric it)", name, metric)
			}
			if val > limit {
				return fmt.Errorf("gate %s: %s = %g exceeds the %g ceiling — benchmark-metric regression",
					name, metric, val, limit)
			}
			log.Printf("gate %s: %s = %g <= %g ok", name, metric, val, limit)
			continue
		}
		if res.AllocsPerOp == nil {
			return fmt.Errorf("gate %s: no allocs/op column (run with -benchmem)", name)
		}
		if *res.AllocsPerOp > limit {
			return fmt.Errorf("gate %s: %.1f allocs/op exceeds the %.1f ceiling — serving-path allocation regression",
				name, *res.AllocsPerOp, limit)
		}
		log.Printf("gate %s: %.1f allocs/op <= %.1f ok", name, *res.AllocsPerOp, limit)
	}
	return nil
}

// parseBenchLine decodes one result line of the standard bench format:
//
//	BenchmarkName-8   12345   678.9 ns/op   10 B/op   2 allocs/op   1.0 extra-metric
func parseBenchLine(line string) (string, Result, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return "", Result{}, fmt.Errorf("want >= 4 fields, got %d", len(fields))
	}
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i] // strip the GOMAXPROCS suffix
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", Result{}, fmt.Errorf("iterations: %v", err)
	}
	res := Result{Iterations: iters}
	seenNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", Result{}, fmt.Errorf("value %q: %v", fields[i], err)
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			res.NsPerOp = val
			seenNs = true
		case "B/op":
			v := val
			res.BytesPerOp = &v
		case "allocs/op":
			v := val
			res.AllocsPerOp = &v
		default:
			if res.Metrics == nil {
				res.Metrics = make(map[string]float64)
			}
			res.Metrics[unit] = val
		}
	}
	if !seenNs {
		return "", Result{}, fmt.Errorf("no ns/op column")
	}
	return name, res, nil
}
