// Command apilint enforces the serving-API surface contract introduced with
// the core.Recommender redesign: recommendation entry points live in
// internal/core (the Recommender interface and its package-level shims) and
// internal/cache (the caching wrappers) and nowhere else. Any new exported
// `Recommend*` function or method elsewhere re-grows the method sprawl the
// redesign collapsed, so CI fails on it (`make check-api`).
//
// Usage:
//
//	apilint [dir]
//
// dir defaults to ".". Exit status 1 lists every violation.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// allowedDirs may declare exported Recommend* identifiers: the interface
// seam itself and the result cache's wrappers around it.
var allowedDirs = map[string]bool{
	filepath.Join("internal", "core"):  true,
	filepath.Join("internal", "cache"): true,
}

// allowedNames may appear anywhere: implementations of the
// core.Recommender interface's own method set.
var allowedNames = map[string]bool{
	"RecommendBatchIDs": true,
}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var violations []string
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || name == ".git" || strings.HasPrefix(name, "_") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			rel = path
		}
		if allowedDirs[filepath.Dir(rel)] {
			return nil
		}
		file, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("%s: %v", path, err)
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			name := fn.Name.Name
			if !strings.HasPrefix(name, "Recommend") || !fn.Name.IsExported() {
				continue
			}
			if allowedNames[name] {
				continue
			}
			pos := fset.Position(fn.Pos())
			violations = append(violations,
				fmt.Sprintf("%s:%d: exported %s %q outside internal/core and internal/cache — express it over core.Recommender instead",
					pos.Filename, pos.Line, declKind(fn), name))
		}
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "apilint:", err)
		os.Exit(2)
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, v)
		}
		fmt.Fprintf(os.Stderr, "apilint: %d violation(s)\n", len(violations))
		os.Exit(1)
	}
}

func declKind(fn *ast.FuncDecl) string {
	if fn.Recv != nil {
		return "method"
	}
	return "function"
}
