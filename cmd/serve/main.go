// Command serve exposes trained recommendation models over HTTP — the
// paper's real-time deployment scenario, hardened for production traffic:
// a sharded LRU result cache, request metrics, hot model reload, graceful
// shutdown, and (since the fleet subsystem) multi-model A/B serving, shadow
// scoring and consistent-hash shard fan-out.
//
// Roles:
//
//	serve (default)  single- or multi-model serving process
//	shard            alias of serve for replicas behind a -role router
//	router           consistent-hash fan-out over N shard replicas
//
// Single model:
//
//	serve -model model.bin [-addr :8080] [-n 5] [-cache 16384] [-quiet]
//
// A/B + shadow fleet (first arm is the champion; weight 0 = shadow-only):
//
//	serve -arms champion=model.bin:90,challenger=model2.bin:10,next=model3.bin:0
//
// Shard fan-out — in-process loopback ring (one mmapped model, 3 partitions):
//
//	serve -role router -shards 3 -model model.bin
//
// Shard fan-out — distributed (each URL runs `serve -role shard -model ...`):
//
//	serve -role router -shards http://shard-0:8080,http://shard-1:8080
//
// Then:
//
//	curl 'localhost:8080/suggest?q=nokia+n73&q=nokia+n73+themes'
//	curl -X POST localhost:8080/suggest/batch -d '{"requests":[{"context":["nokia n73"]}]}'
//	curl localhost:8080/metrics
//	curl localhost:8080/models        # registry: models, roles, dict hashes, divergence
//	curl 'localhost:8080/route?q=o2'  # which arm/shard owns this context
//
// Hot reload: retrain with cmd/train, overwrite the model file, then either
// `kill -HUP <pid>` or `curl -X POST localhost:8080/reload` (fleet mode:
// `/reload?model=<name>`). A replacement whose dictionary is not an
// ID-preserving extension of the served one is refused with 409 — append
// `&force=1` to replace the vocabulary deliberately. The new model is
// swapped in behind an atomic pointer; in-flight requests finish on the old
// one and no traffic is dropped. SIGINT/SIGTERM drain connections before
// exiting.
//
// -map-willneed and -mlock request best-effort kernel paging hints for the
// mmapped compiled blob (readahead / eviction pinning); the applied outcome
// is logged and surfaced in /healthz as model_map_advice.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/pairwise"
	"repro/internal/serve"
)

// loadOpts carries the flag-gated mmap paging hints into every model load.
var loadOpts core.LoadOptions

// batchWorkers carries -batch-workers into every model load (reloads
// included): 0 fans batch descents across GOMAXPROCS goroutines, 1 keeps
// them sequential. Answers are bit-identical either way.
var batchWorkers int

// loadModel loads through core.LoadAnyPath so every container format is
// addressable by file path: V003/V004 MVMM files take the mmap fast path
// (the compiled serving form is mapped, not decoded, which makes cold starts
// and SIGHUP reloads near-instant and shares trie pages across server
// processes), and QRECF001 family containers (HMM, cluster, pairwise) load
// as Predictor-backed arms.
func loadModel(path string) (core.Recommender, error) {
	rec, err := core.LoadAnyPath(path, loadOpts)
	if err != nil {
		return nil, err
	}
	if bw, ok := rec.(interface{ SetBatchWorkers(int) }); ok {
		bw.SetBatchWorkers(batchWorkers)
	}
	li := rec.LoadInfo()
	advice := li.MapAdvice
	if advice == "" {
		advice = "none"
	}
	log.Printf("model load: path=%s mode=%s version=%s blob=%s/%dB advice=%s took=%s",
		path, li.Mode, li.Version, li.Format, li.BlobBytes, advice, li.Duration.Round(time.Microsecond))
	return rec, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("serve: ")
	var (
		role      = flag.String("role", "serve", "process role: serve, shard (replica behind a router) or router (consistent-hash fan-out)")
		modelPath = flag.String("model", "model.bin", "model file from cmd/train (single-model serving, or the shared model of a loopback ring)")
		arms      = flag.String("arms", "", "fleet arms 'name=path[:weight],...': first arm is the champion, weight 0 = shadow-scored only (default weight 1)")
		rerank    = flag.String("rerank", "", "pairwise rerank 'path[:lambda]': blend the champion's top-N with an adjacency model (QRECF001, fleet mode only)")
		shards    = flag.String("shards", "", "router backends: an integer N for an in-process loopback ring over -model, or comma-separated shard base URLs")
		vnodes    = flag.Int("vnodes", 0, "virtual nodes per shard on the consistent-hash ring (0 = default)")
		replicas  = flag.Int("replicas", 1, "router replication factor R: each key range maps to R distinct shards and fails over along the list (1 = off)")
		shardTO   = flag.Duration("shard-timeout", 2*time.Second, "router per-attempt deadline before failing over to the next replica (0 = transport default only)")
		hedge     = flag.Duration("hedge-after", 0, "router hedged GETs: fire the next replica after this delay and take the first success (0 = off, negative = auto from live p99)")
		peers     = flag.String("peers", "", "comma-separated peer router base URLs for the anti-entropy sweep of fleet admin state")
		syncEvery = flag.Duration("sync-every", 5*time.Second, "anti-entropy sweep interval (shards re-read + peers pulled)")
		addr      = flag.String("addr", ":8080", "listen address")
		topN      = flag.Int("n", 5, "default suggestion count")
		cacheCap  = flag.Int("cache", 0, "result cache capacity (0 = default; loopback rings split it across shards)")
		quiet     = flag.Bool("quiet", false, "disable per-request logging")
		drain     = flag.Duration("drain", 10*time.Second, "graceful shutdown timeout")
		willNeed  = flag.Bool("map-willneed", false, "madvise(WILLNEED) the mmapped compiled blob: asynchronous readahead instead of first-touch page faults")
		mlock     = flag.Bool("mlock", false, "mlock(2) the mmapped compiled blob: pin trie pages against eviction (needs RLIMIT_MEMLOCK)")
		batchW    = flag.Int("batch-workers", 0, "goroutines per batch descent (0 = GOMAXPROCS, 1 = sequential; answers are identical)")
	)
	flag.Parse()
	loadOpts = core.LoadOptions{MapWillNeed: *willNeed, MapLock: *mlock}
	batchWorkers = *batchW

	var handler http.Handler
	var onHUP func()
	switch *role {
	case "serve", "shard":
		h := buildServeHandler(*modelPath, *arms, *rerank, *topN, *cacheCap, *quiet)
		handler = h
		onHUP = h.reloadAll
	case "router":
		ropts := fleet.RouterOptions{
			Replicas:     *replicas,
			ShardTimeout: *shardTO,
			HedgeAfter:   *hedge,
		}
		router := buildRouterHandler(*shards, *vnodes, *modelPath, *topN, *cacheCap, ropts)
		if *peers != "" {
			router.SetPeers(strings.Split(*peers, ","), nil)
		}
		stopSweep := router.StartAntiEntropy(*syncEvery)
		defer stopSweep()
		handler = router
		onHUP = func() { log.Print("SIGHUP ignored: POST /reload to the router (broadcast to all shards)") }
	default:
		log.Fatalf("unknown -role %q (want serve, shard or router)", *role)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Printf("role %s listening on %s", *role, *addr)

	// SIGHUP hot-reloads model files; SIGINT/SIGTERM drain and exit.
	reload := make(chan os.Signal, 1)
	signal.Notify(reload, syscall.SIGHUP)
	go func() {
		for range reload {
			onHUP()
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe() }()

	select {
	case err := <-done:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	case sig := <-stop:
		log.Printf("%s: draining connections (up to %s)", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}
	log.Print("bye")
}

// serveProcess bundles the handler with what SIGHUP must reload.
type serveProcess struct {
	*serve.Handler
	fleetRouter *fleet.Router
}

// reloadAll is the SIGHUP behaviour: reload the single model, or every fleet
// slot that has a loader. Dictionary-incompatible replacements are refused
// (the operator can force over HTTP); the old model keeps serving either
// way.
func (p *serveProcess) reloadAll() {
	if p.fleetRouter == nil {
		gen, err := p.Handler.Reload()
		if err != nil {
			log.Printf("SIGHUP reload failed (still serving old model): %v", err)
			return
		}
		log.Printf("SIGHUP reload ok: now at model generation %d", gen)
		return
	}
	for _, slot := range p.fleetRouter.Registry().Slots() {
		gen, err := slot.Reload(false)
		if err != nil {
			log.Printf("SIGHUP reload of %q failed (still serving old model): %v", slot.Name(), err)
			continue
		}
		log.Printf("SIGHUP reload ok: model %q at generation %d", slot.Name(), gen)
	}
	if err := p.fleetRouter.RefreshBase(); err != nil {
		log.Printf("interning base not advanced: %v", err)
	}
}

// buildServeHandler assembles the serve/shard role: single-model serving, or
// a fleet registry + router when -arms is given.
func buildServeHandler(modelPath, arms, rerank string, topN, cacheCap int, quiet bool) *serveProcess {
	opts := serve.Options{DefaultN: topN, CacheCapacity: cacheCap}
	if !quiet {
		opts.Logger = log.Default()
	}
	if arms == "" {
		if rerank != "" {
			log.Fatal("-rerank needs -arms (reranking is a fleet arm hook)")
		}
		rec, err := loadModel(modelPath)
		if err != nil {
			log.Fatal(err)
		}
		opts.ReloadFunc = func() (core.Recommender, error) { return loadModel(modelPath) }
		logModelShape("", rec)
		return &serveProcess{Handler: serve.New(rec, opts)}
	}

	specs, err := parseArms(arms)
	if err != nil {
		log.Fatal(err)
	}
	reg := fleet.NewRegistry(cacheCap)
	var champion core.Recommender
	for _, spec := range specs {
		rec, err := loadModel(spec.path)
		if err != nil {
			log.Fatalf("arm %q: %v", spec.name, err)
		}
		path := spec.path
		if _, err := reg.Add(spec.name, rec, func() (core.Recommender, error) { return loadModel(path) }); err != nil {
			log.Fatal(err)
		}
		if champion == nil {
			champion = rec
		}
		logModelShape(spec.name, rec)
	}
	armSpecs := make([]fleet.ArmSpec, len(specs))
	for i, spec := range specs {
		armSpecs[i] = fleet.ArmSpec{Name: spec.name, Weight: spec.weight}
	}
	rt, err := fleet.NewRouter(reg, armSpecs...)
	if err != nil {
		log.Fatal(err)
	}
	for _, as := range rt.ArmStats() {
		log.Printf("fleet arm %q: weight %d (%.1f%% of traffic)", as.Name, as.Weight, 100*as.Share)
	}
	for _, s := range rt.ShadowSlots() {
		log.Printf("fleet shadow %q: scored asynchronously, serves no traffic", s.Name())
	}
	if rerank != "" {
		rk, err := buildReranker(rerank, champion)
		if err != nil {
			log.Fatal(err)
		}
		championArm := rt.Arms()[0].Slot().Name()
		if err := rt.SetRerank(championArm, rk); err != nil {
			log.Fatal(err)
		}
		log.Printf("fleet arm %q: second-stage rerank %s", championArm, rk.Name())
	}
	opts.Fleet = rt
	return &serveProcess{Handler: serve.New(champion, opts), fleetRouter: rt}
}

// buildReranker decodes -rerank ('path[:lambda]') and loads the adjacency
// model behind it. The adjacency model must have been trained against an
// ID-preserving extension of the champion's dictionary, so the interned
// context the fleet routes on is valid inside the adjacency matrix too.
func buildReranker(spec string, champion core.Recommender) (fleet.Reranker, error) {
	path, lambda := spec, 0.0
	if p, l, ok := strings.Cut(spec, ":"); ok {
		v, err := strconv.ParseFloat(l, 64)
		if err != nil {
			return nil, fmt.Errorf("malformed -rerank lambda in %q: %v", spec, err)
		}
		path, lambda = p, v
	}
	rec, err := loadModel(path)
	if err != nil {
		return nil, fmt.Errorf("-rerank %s: %v", path, err)
	}
	adj, ok := rec.Predictor().(*pairwise.Adjacency)
	if !ok {
		return nil, fmt.Errorf("-rerank %s: not a pairwise adjacency model (train with cmd/train -family adjacency)", path)
	}
	if !rec.Dict().Extends(champion.Dict()) {
		return nil, fmt.Errorf("-rerank %s: adjacency dictionary (hash %x) does not extend the champion's (hash %x)",
			path, rec.Dict().Hash(), champion.Dict().Hash())
	}
	return fleet.NewPairwiseReranker(adj, rec.Dict(), lambda)
}

// buildRouterHandler assembles the router role: a consistent-hash ring over
// an in-process loopback (integer -shards, sharing one -model) or remote
// shard URLs, replicated and failure-policied per ropts.
func buildRouterHandler(shards string, vnodes int, modelPath string, topN, cacheCap int, ropts fleet.RouterOptions) *fleet.ShardRouter {
	if shards == "" {
		log.Fatal("-role router needs -shards (an integer for a loopback ring, or comma-separated shard URLs)")
	}
	if n, err := strconv.Atoi(shards); err == nil {
		if n < 1 {
			log.Fatalf("-shards %d: need at least one shard", n)
		}
		rec, err := loadModel(modelPath)
		if err != nil {
			log.Fatal(err)
		}
		logModelShape("", rec)
		perShardCache := 0
		if cacheCap > 0 {
			perShardCache = (cacheCap + n - 1) / n
		}
		handlers := make([]http.Handler, n)
		for i := range handlers {
			handlers[i] = serve.New(rec, serve.Options{
				DefaultN:      topN,
				CacheCapacity: perShardCache,
				// POST /reload on the router broadcasts here, so a loopback
				// ring hot-reloads like any other deployment. Each partition
				// remaps the file independently; pages stay shared.
				ReloadFunc: func() (core.Recommender, error) { return loadModel(modelPath) },
			})
		}
		router, err := fleet.NewShardRouterOpts(fleet.NewRing(n, vnodes), fleet.NewLoopbackTransport(handlers...), ropts)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("loopback ring: %d shards over one model, %d virtual nodes/shard, R=%d",
			n, ringVnodes(vnodes), router.Replicas())
		return router
	}
	urls := strings.Split(shards, ",")
	// nil client: NewHTTPTransport supplies dial/response timeouts and a
	// sized connection pool; -shard-timeout bounds each attempt via ctx.
	tr, err := fleet.NewHTTPTransport(urls, nil)
	if err != nil {
		log.Fatal(err)
	}
	router, err := fleet.NewShardRouterOpts(fleet.NewRing(len(urls), vnodes), tr, ropts)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("HTTP ring: %d shards (%s), %d virtual nodes/shard, R=%d",
		len(urls), shards, ringVnodes(vnodes), router.Replicas())
	return router
}

func ringVnodes(vnodes int) int {
	if vnodes <= 0 {
		return fleet.DefaultVirtualNodes
	}
	return vnodes
}

// armSpec is one parsed -arms entry.
type armSpec struct {
	name   string
	path   string
	weight uint32
}

// parseArms decodes -arms: comma-separated name=path[:weight] entries,
// weight defaulting to 1 and 0 marking shadow arms.
func parseArms(s string) ([]armSpec, error) {
	var specs []armSpec
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, rest, ok := strings.Cut(entry, "=")
		if !ok || name == "" || rest == "" {
			return nil, fmt.Errorf("malformed -arms entry %q (want name=path[:weight])", entry)
		}
		spec := armSpec{name: name, path: rest, weight: 1}
		if path, w, ok := strings.Cut(rest, ":"); ok {
			weight, err := strconv.ParseUint(w, 10, 32)
			if err != nil {
				return nil, fmt.Errorf("malformed weight in -arms entry %q: %v", entry, err)
			}
			spec.path = path
			spec.weight = uint32(weight)
		}
		specs = append(specs, spec)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("-arms given but no arms parsed from %q", s)
	}
	return specs, nil
}

// logModelShape logs the loaded model's serving shape (the compiled-PST line
// operators grep for).
func logModelShape(name string, rec core.Recommender) {
	label := ""
	if name != "" {
		label = fmt.Sprintf(" %q", name)
	}
	if cm := rec.CompiledModel(); cm != nil {
		form := "exact"
		if cm.Quantised() {
			form = "quantised"
		}
		log.Printf("model%s loaded: %d known queries, %s compiled PST with %d nodes / %d followers (depth %d, %d components)",
			label, rec.Dict().Len(), form, cm.Nodes(), cm.Followers(), cm.Depth(), cm.Components())
		return
	}
	if p := rec.Predictor(); p != nil {
		shape := p.Shape()
		log.Printf("model%s loaded: %d known queries, %s family model (%s, %d states, depth %d)",
			label, rec.Dict().Len(), shape.Family, shape.Label, shape.States, shape.Depth)
		return
	}
	log.Printf("model%s loaded: %d known queries, serving interpreted mixture (compile unavailable)",
		label, rec.Dict().Len())
}
