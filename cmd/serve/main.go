// Command serve exposes a trained recommendation model over HTTP — the
// paper's real-time deployment scenario, hardened for production traffic:
// a sharded LRU result cache, request metrics, hot model reload and
// graceful shutdown.
//
// Usage:
//
//	serve -model model.bin [-addr :8080] [-n 5] [-cache 16384] [-quiet]
//
// Then:
//
//	curl 'localhost:8080/suggest?q=nokia+n73&q=nokia+n73+themes'
//	curl -X POST localhost:8080/suggest/batch -d '{"requests":[{"context":["nokia n73"]}]}'
//	curl localhost:8080/metrics
//
// Hot reload: retrain with cmd/train, overwrite the model file, then either
// `kill -HUP <pid>` or `curl -X POST localhost:8080/reload`. The new model
// is swapped in behind an atomic pointer; in-flight requests finish on the
// old one and no traffic is dropped. SIGINT/SIGTERM drain connections
// before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
)

// loadModel loads through core.LoadPath so V003 model files take the mmap
// fast path: the compiled serving form is mapped, not decoded, which makes
// cold starts (and SIGHUP reloads) near-instant and shares trie pages across
// server processes.
func loadModel(path string) (*core.Recommender, error) {
	rec, err := core.LoadPath(path)
	if err != nil {
		return nil, err
	}
	li := rec.LoadInfo()
	log.Printf("model load: mode=%s version=%s blob=%s/%dB took=%s",
		li.Mode, li.Version, li.Format, li.BlobBytes, li.Duration.Round(time.Microsecond))
	return rec, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("serve: ")
	var (
		modelPath = flag.String("model", "model.bin", "model file from cmd/train")
		addr      = flag.String("addr", ":8080", "listen address")
		topN      = flag.Int("n", 5, "default suggestion count")
		cacheCap  = flag.Int("cache", 0, "result cache capacity (0 = default)")
		quiet     = flag.Bool("quiet", false, "disable per-request logging")
		drain     = flag.Duration("drain", 10*time.Second, "graceful shutdown timeout")
	)
	flag.Parse()

	rec, err := loadModel(*modelPath)
	if err != nil {
		log.Fatal(err)
	}
	opts := serve.Options{
		DefaultN:      *topN,
		CacheCapacity: *cacheCap,
		ReloadFunc:    func() (*core.Recommender, error) { return loadModel(*modelPath) },
	}
	if !*quiet {
		opts.Logger = log.Default()
	}
	handler := serve.New(rec, opts)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}
	if cm := rec.CompiledModel(); cm != nil {
		// V003/V004 model files mmap the compiled PST (see the "model load"
		// line for mode, blob format and duration); V002 decode it; V001
		// compile during Load.
		form := "exact"
		if cm.Quantised() {
			form = "quantised"
		}
		log.Printf("model loaded: %d known queries, %s compiled PST with %d nodes / %d followers (depth %d, %d components); listening on %s",
			rec.Dict().Len(), form, cm.Nodes(), cm.Followers(), cm.Depth(), cm.Components(), *addr)
	} else {
		log.Printf("model loaded: %d known queries, serving interpreted mixture (compile unavailable); listening on %s",
			rec.Dict().Len(), *addr)
	}

	// SIGHUP hot-reloads the model file; SIGINT/SIGTERM drain and exit.
	reload := make(chan os.Signal, 1)
	signal.Notify(reload, syscall.SIGHUP)
	go func() {
		for range reload {
			gen, err := handler.Reload()
			if err != nil {
				log.Printf("SIGHUP reload failed (still serving old model): %v", err)
				continue
			}
			log.Printf("SIGHUP reload ok: now at model generation %d", gen)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe() }()

	select {
	case err := <-done:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	case sig := <-stop:
		log.Printf("%s: draining connections (up to %s)", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}
	log.Print("bye")
}
