// Command serve exposes a trained recommendation model over HTTP — the
// paper's real-time deployment scenario.
//
// Usage:
//
//	serve -model model.bin [-addr :8080] [-n 5]
//
// Then: curl 'localhost:8080/suggest?q=nokia+n73&q=nokia+n73+themes'
package main

import (
	"flag"
	"log"
	"net/http"
	"os"

	"repro/internal/core"
	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("serve: ")
	var (
		modelPath = flag.String("model", "model.bin", "model file from cmd/train")
		addr      = flag.String("addr", ":8080", "listen address")
		topN      = flag.Int("n", 5, "default suggestion count")
	)
	flag.Parse()

	f, err := os.Open(*modelPath)
	if err != nil {
		log.Fatal(err)
	}
	rec, err := core.Load(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("model loaded: %d known queries; listening on %s", rec.Dict().Len(), *addr)
	if err := http.ListenAndServe(*addr, serve.NewHandler(rec, *topN)); err != nil {
		log.Fatal(err)
	}
}
