// Command serve exposes trained recommendation models over HTTP — the
// paper's real-time deployment scenario, hardened for production traffic:
// a sharded LRU result cache, request metrics, hot model reload, graceful
// shutdown, and (since the fleet subsystem) multi-model A/B serving, shadow
// scoring and consistent-hash shard fan-out.
//
// Roles:
//
//	serve (default)  single- or multi-model serving process
//	shard            alias of serve for replicas behind a -role router
//	router           consistent-hash fan-out over N shard replicas
//
// Single model:
//
//	serve -model model.bin [-addr :8080] [-n 5] [-cache 16384] [-quiet]
//
// A/B + shadow fleet (first arm is the champion; weight 0 = shadow-only):
//
//	serve -arms champion=model.bin:90,challenger=model2.bin:10,next=model3.bin:0
//
// Shard fan-out — in-process loopback ring (one mmapped model, 3 partitions):
//
//	serve -role router -shards 3 -model model.bin
//
// Shard fan-out — distributed (each URL runs `serve -role shard -model ...`):
//
//	serve -role router -shards http://shard-0:8080,http://shard-1:8080
//
// Then:
//
//	curl 'localhost:8080/suggest?q=nokia+n73&q=nokia+n73+themes'
//	curl -X POST localhost:8080/suggest/batch -d '{"requests":[{"context":["nokia n73"]}]}'
//	curl localhost:8080/metrics
//	curl localhost:8080/models        # registry: models, roles, dict hashes, divergence
//	curl 'localhost:8080/route?q=o2'  # which arm/shard owns this context
//
// Hot reload: retrain with cmd/train, overwrite the model file, then either
// `kill -HUP <pid>` or `curl -X POST localhost:8080/reload` (fleet mode:
// `/reload?model=<name>`). A replacement whose dictionary is not an
// ID-preserving extension of the served one is refused with 409 — append
// `&force=1` to replace the vocabulary deliberately. The new model is
// swapped in behind an atomic pointer; in-flight requests finish on the old
// one and no traffic is dropped. SIGINT/SIGTERM drain connections before
// exiting.
//
// -map-willneed and -mlock request best-effort kernel paging hints for the
// mmapped compiled blob (readahead / eviction pinning); the applied outcome
// is logged and surfaced in /healthz as model_map_advice.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/pairwise"
	"repro/internal/serve"
	"repro/internal/stream"
)

// loadOpts carries the flag-gated mmap paging hints into every model load.
var loadOpts core.LoadOptions

// batchWorkers carries -batch-workers into every model load (reloads
// included): 0 fans batch descents across GOMAXPROCS goroutines, 1 keeps
// them sequential. Answers are bit-identical either way.
var batchWorkers int

// loadModel loads through core.LoadAnyPath so every container format is
// addressable by file path: V003/V004 MVMM files take the mmap fast path
// (the compiled serving form is mapped, not decoded, which makes cold starts
// and SIGHUP reloads near-instant and shares trie pages across server
// processes), and QRECF001 family containers (HMM, cluster, pairwise) load
// as Predictor-backed arms.
func loadModel(path string) (core.Recommender, error) {
	rec, err := core.LoadAnyPath(path, loadOpts)
	if err != nil {
		return nil, err
	}
	if bw, ok := rec.(interface{ SetBatchWorkers(int) }); ok {
		bw.SetBatchWorkers(batchWorkers)
	}
	li := rec.LoadInfo()
	advice := li.MapAdvice
	if advice == "" {
		advice = "none"
	}
	log.Printf("model load: path=%s mode=%s version=%s blob=%s/%dB advice=%s took=%s",
		path, li.Mode, li.Version, li.Format, li.BlobBytes, advice, li.Duration.Round(time.Microsecond))
	return rec, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("serve: ")
	var (
		role      = flag.String("role", "serve", "process role: serve, shard (replica behind a router) or router (consistent-hash fan-out)")
		modelPath = flag.String("model", "model.bin", "model file from cmd/train (single-model serving, or the shared model of a loopback ring)")
		arms      = flag.String("arms", "", "fleet arms 'name=path[:weight],...': first arm is the champion, weight 0 = shadow-scored only (default weight 1)")
		rerank    = flag.String("rerank", "", "pairwise rerank 'path[:lambda]': blend the champion's top-N with an adjacency model (QRECF001, fleet mode only)")
		shards    = flag.String("shards", "", "router backends: an integer N for an in-process loopback ring over -model, or comma-separated shard base URLs")
		vnodes    = flag.Int("vnodes", 0, "virtual nodes per shard on the consistent-hash ring (0 = default)")
		replicas  = flag.Int("replicas", 1, "router replication factor R: each key range maps to R distinct shards and fails over along the list (1 = off)")
		shardTO   = flag.Duration("shard-timeout", 2*time.Second, "router per-attempt deadline before failing over to the next replica (0 = transport default only)")
		hedge     = flag.Duration("hedge-after", 0, "router hedged GETs: fire the next replica after this delay and take the first success (0 = off, negative = auto from live p99)")
		peers     = flag.String("peers", "", "comma-separated peer router base URLs for the anti-entropy sweep of fleet admin state")
		syncEvery = flag.Duration("sync-every", 5*time.Second, "anti-entropy sweep interval (shards re-read + peers pulled)")
		addr      = flag.String("addr", ":8080", "listen address")
		topN      = flag.Int("n", 5, "default suggestion count")
		cacheCap  = flag.Int("cache", 0, "result cache capacity (0 = default; loopback rings split it across shards)")
		quiet     = flag.Bool("quiet", false, "disable per-request logging")
		drain     = flag.Duration("drain", 10*time.Second, "graceful shutdown timeout")
		willNeed  = flag.Bool("map-willneed", false, "madvise(WILLNEED) the mmapped compiled blob: asynchronous readahead instead of first-touch page faults")
		mlock     = flag.Bool("mlock", false, "mlock(2) the mmapped compiled blob: pin trie pages against eviction (needs RLIMIT_MEMLOCK)")
		batchW    = flag.Int("batch-workers", 0, "goroutines per batch descent (0 = GOMAXPROCS, 1 = sequential; answers are identical)")
		pprofOn   = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ on the serving address (keep off on exposed listeners)")
	)
	var ingest ingestOpts
	flag.StringVar(&ingest.logPath, "ingest-log", "", "embed the streaming ingestion loop: tail this query log, retrain and push into the -ingest-arm slot (fleet mode only; see cmd/ingest for the standalone loop)")
	flag.StringVar(&ingest.walPath, "ingest-wal", "ingest.wal", "ingestion write-log path (crash-replayed on restart)")
	flag.StringVar(&ingest.modelOut, "ingest-model", "challenger.bin", "recompiled snapshot output path")
	flag.StringVar(&ingest.arm, "ingest-arm", "challenger", "fleet arm reloaded in-process on every recompile")
	flag.DurationVar(&ingest.gap, "ingest-gap", 30*time.Minute, "ingestion session gap")
	flag.Uint64Var(&ingest.recompile, "ingest-recompile", 5000, "completed sessions between background recompiles")
	flag.IntVar(&ingest.threshold, "ingest-threshold", 2, "drop session patterns seen fewer times at recompile (-1 = keep all)")
	flag.DurationVar(&ingest.poll, "ingest-poll", 200*time.Millisecond, "tail poll interval when caught up")
	flag.StringVar(&ingest.rampSteps, "ramp", "", "auto-ramp weight schedule for -ingest-arm, comma-separated ascending weights e.g. '1,5,25' (empty = pushes stay shadow-only)")
	flag.DurationVar(&ingest.rampHold, "ramp-hold", 10*time.Minute, "minimum time at each ramp step before advancing")
	flag.DurationVar(&ingest.rampEvery, "ramp-every", 15*time.Second, "ramp scheduler tick interval")
	flag.Uint64Var(&ingest.rampMinSamples, "ramp-min-samples", 500, "shadow samples required before the challenger takes its first step")
	flag.Float64Var(&ingest.rampMaxMismatch, "ramp-max-mismatch", 0, "freeze the ramp when the challenger's top-1 mismatch rate exceeds this (0 = off)")
	flag.Float64Var(&ingest.rampMinOverlap, "ramp-min-overlap", 0, "freeze the ramp when mean rank overlap falls below this (0 = off)")
	flag.BoolVar(&ingest.rampPromote, "ramp-promote", false, "after the final ramp step's hold, swap the challenger into the champion slot and advance the interning base")
	flag.Parse()
	loadOpts = core.LoadOptions{MapWillNeed: *willNeed, MapLock: *mlock}
	batchWorkers = *batchW

	var handler http.Handler
	var onHUP func()
	switch *role {
	case "serve", "shard":
		h := buildServeHandler(*modelPath, *arms, *rerank, *topN, *cacheCap, *quiet, ingest)
		handler = h
		onHUP = h.reloadAll
	case "router":
		ropts := fleet.RouterOptions{
			Replicas:     *replicas,
			ShardTimeout: *shardTO,
			HedgeAfter:   *hedge,
		}
		router := buildRouterHandler(*shards, *vnodes, *modelPath, *topN, *cacheCap, ropts)
		if *peers != "" {
			router.SetPeers(strings.Split(*peers, ","), nil)
		}
		stopSweep := router.StartAntiEntropy(*syncEvery)
		defer stopSweep()
		handler = router
		onHUP = func() { log.Print("SIGHUP ignored: POST /reload to the router (broadcast to all shards)") }
	default:
		log.Fatalf("unknown -role %q (want serve, shard or router)", *role)
	}

	if *pprofOn {
		// Explicit registrations (not the net/http/pprof DefaultServeMux side
		// effect) so only the profiling endpoints are added; everything else
		// still routes to the role handler.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		handler = mux
		log.Print("pprof: /debug/pprof/ mounted")
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Printf("role %s listening on %s", *role, *addr)

	// SIGHUP hot-reloads model files; SIGINT/SIGTERM drain and exit.
	reload := make(chan os.Signal, 1)
	signal.Notify(reload, syscall.SIGHUP)
	go func() {
		for range reload {
			onHUP()
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe() }()

	select {
	case err := <-done:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	case sig := <-stop:
		log.Printf("%s: draining connections (up to %s)", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}
	log.Print("bye")
}

// serveProcess bundles the handler with what SIGHUP must reload.
type serveProcess struct {
	*serve.Handler
	fleetRouter *fleet.Router
}

// reloadAll is the SIGHUP behaviour: reload the single model, or every fleet
// slot that has a loader. Dictionary-incompatible replacements are refused
// (the operator can force over HTTP); the old model keeps serving either
// way.
func (p *serveProcess) reloadAll() {
	if p.fleetRouter == nil {
		gen, err := p.Handler.Reload()
		if err != nil {
			log.Printf("SIGHUP reload failed (still serving old model): %v", err)
			return
		}
		log.Printf("SIGHUP reload ok: now at model generation %d", gen)
		return
	}
	for _, slot := range p.fleetRouter.Registry().Slots() {
		gen, err := slot.Reload(false)
		if err != nil {
			log.Printf("SIGHUP reload of %q failed (still serving old model): %v", slot.Name(), err)
			continue
		}
		log.Printf("SIGHUP reload ok: model %q at generation %d", slot.Name(), gen)
	}
	if err := p.fleetRouter.RefreshBase(); err != nil {
		log.Printf("interning base not advanced: %v", err)
	}
}

// buildServeHandler assembles the serve/shard role: single-model serving, or
// a fleet registry + router when -arms is given.
func buildServeHandler(modelPath, arms, rerank string, topN, cacheCap int, quiet bool, ingest ingestOpts) *serveProcess {
	// One registry + tracer for the whole process: the HTTP handler, the
	// embedded ingest loop and the auto-ramp all record into the same
	// Prometheus exposition and the same tail-sampled trace ring. The tracer
	// tail-samples against the handler's overall request-latency histogram.
	oreg := obs.NewRegistry()
	tracer := obs.NewTracer(512, oreg.Histogram("serve_http_request_us"))
	opts := serve.Options{DefaultN: topN, CacheCapacity: cacheCap, Obs: oreg, Tracer: tracer}
	if !quiet {
		opts.Logger = log.Default()
	}
	if arms == "" {
		if rerank != "" {
			log.Fatal("-rerank needs -arms (reranking is a fleet arm hook)")
		}
		if ingest.logPath != "" {
			log.Fatal("-ingest-log needs -arms with a weight-0 challenger slot to push into (or run cmd/ingest standalone)")
		}
		rec, err := loadModel(modelPath)
		if err != nil {
			log.Fatal(err)
		}
		opts.ReloadFunc = func() (core.Recommender, error) { return loadModel(modelPath) }
		logModelShape("", rec)
		return &serveProcess{Handler: serve.New(rec, opts)}
	}

	specs, err := parseArms(arms)
	if err != nil {
		log.Fatal(err)
	}
	reg := fleet.NewRegistry(cacheCap)
	var champion core.Recommender
	for _, spec := range specs {
		rec, err := loadModel(spec.path)
		if err != nil {
			log.Fatalf("arm %q: %v", spec.name, err)
		}
		path := spec.path
		if _, err := reg.Add(spec.name, rec, func() (core.Recommender, error) { return loadModel(path) }); err != nil {
			log.Fatal(err)
		}
		if champion == nil {
			champion = rec
		}
		logModelShape(spec.name, rec)
	}
	armSpecs := make([]fleet.ArmSpec, len(specs))
	for i, spec := range specs {
		armSpecs[i] = fleet.ArmSpec{Name: spec.name, Weight: spec.weight}
	}
	rt, err := fleet.NewRouter(reg, armSpecs...)
	if err != nil {
		log.Fatal(err)
	}
	for _, as := range rt.ArmStats() {
		log.Printf("fleet arm %q: weight %d (%.1f%% of traffic)", as.Name, as.Weight, 100*as.Share)
	}
	for _, s := range rt.ShadowSlots() {
		log.Printf("fleet shadow %q: scored asynchronously, serves no traffic", s.Name())
	}
	if rerank != "" {
		rk, err := buildReranker(rerank, champion)
		if err != nil {
			log.Fatal(err)
		}
		championArm := rt.Arms()[0].Slot().Name()
		if err := rt.SetRerank(championArm, rk); err != nil {
			log.Fatal(err)
		}
		log.Printf("fleet arm %q: second-stage rerank %s", championArm, rk.Name())
	}
	if ingest.logPath != "" {
		opts.IngestStatus = startIngestLoop(rt, champion, ingest, oreg, tracer)
	}
	opts.Fleet = rt
	return &serveProcess{Handler: serve.New(champion, opts), fleetRouter: rt}
}

// ingestOpts carries the -ingest-* / -ramp-* flags into the embedded
// streaming ingestion loop.
type ingestOpts struct {
	logPath, walPath, modelOut, arm string
	gap, poll, rampHold, rampEvery  time.Duration
	recompile, rampMinSamples       uint64
	threshold                       int
	rampSteps                       string
	rampMaxMismatch, rampMinOverlap float64
	rampPromote                     bool
}

// startIngestLoop embeds the cmd/ingest loop in the serving process: tail the
// query log behind the write-log, recompile, and push snapshots into the
// challenger slot in-process (the same swap-and-refresh path POST /v1/reload
// takes, minus the HTTP hop). With -ramp it also runs the auto-ramp
// scheduler. Ingest steps and ramp transitions record into the shared
// registry and tracer, next to the request traffic. Returns the /v1/ingest
// status hook.
func startIngestLoop(rt *fleet.Router, champion core.Recommender, io ingestOpts, reg *obs.Registry, tracer *obs.Tracer) func() any {
	slot := rt.Registry().Slot(io.arm)
	if slot == nil {
		log.Fatalf("-ingest-arm %q is not a registered fleet arm (declare it in -arms, weight 0)", io.arm)
	}
	// The log may not exist yet at boot (the traffic tee starts later):
	// create it empty so the tailer can start following.
	if f, err := os.OpenFile(io.logPath, os.O_CREATE|os.O_WRONLY, 0o644); err != nil {
		log.Fatalf("-ingest-log %s: %v", io.logPath, err)
	} else {
		f.Close()
	}
	ing, err := stream.NewIngester(stream.Config{
		LogPath:           io.logPath,
		WALPath:           io.walPath,
		ModelPath:         io.modelOut,
		BaseVocab:         champion.Dict().Strings(),
		Train:             core.Config{ReductionThreshold: io.threshold, SessionGap: io.gap},
		RecompileSessions: io.recompile,
		Obs:               reg,
		Tracer:            tracer,
		Push: func(modelPath string) error {
			gen, err := slot.Reload(false)
			if err != nil {
				return err
			}
			if err := rt.RefreshBase(); err != nil {
				log.Printf("ingest: interning base not advanced after push: %v", err)
			}
			log.Printf("ingest: pushed %s into arm %q (generation %d)", modelPath, io.arm, gen)
			return nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if st := ing.Status(); st.Replayed > 0 || st.TornTailBytes > 0 {
		log.Printf("ingest: write-log replayed %d entries (%d sessions), %d torn bytes discarded, resuming at offset %d",
			st.Replayed, st.Sessions, st.TornTailBytes, st.LogOffset)
	}
	go func() {
		if err := ing.Run(context.Background(), io.poll); err != nil {
			log.Printf("ingest: loop stopped: %v", err)
		}
	}()
	log.Printf("ingest: tailing %s (write-log %s, recompile every %d sessions into arm %q)",
		io.logPath, io.walPath, io.recompile, io.arm)

	var ramp *fleet.Ramp
	if io.rampSteps != "" {
		var steps []uint32
		for _, s := range strings.Split(io.rampSteps, ",") {
			w, err := strconv.ParseUint(strings.TrimSpace(s), 10, 32)
			if err != nil {
				log.Fatalf("malformed -ramp step %q: %v", s, err)
			}
			steps = append(steps, uint32(w))
		}
		ramp, err = fleet.NewRamp(rt, io.arm, fleet.RampPolicy{
			Steps:           steps,
			Hold:            io.rampHold,
			MinSamples:      io.rampMinSamples,
			MaxTop1Mismatch: io.rampMaxMismatch,
			MinRankOverlap:  io.rampMinOverlap,
			Promote:         io.rampPromote,
		})
		if err != nil {
			log.Fatal(err)
		}
		ramp.SetObservability(reg, tracer)
		ramp.Start(io.rampEvery)
		log.Printf("ramp: arm %q walks %v (hold %s, %d shadow samples to start, promote=%v)",
			io.arm, steps, io.rampHold, io.rampMinSamples, io.rampPromote)
	}

	type ingestView struct {
		stream.Status
		Ramp *fleet.RampStatus `json:"ramp,omitempty"`
	}
	return func() any {
		v := ingestView{Status: ing.Status()}
		if ramp != nil {
			rs := ramp.Status()
			v.Ramp = &rs
		}
		return v
	}
}

// buildReranker decodes -rerank ('path[:lambda]') and loads the adjacency
// model behind it. The adjacency model must have been trained against an
// ID-preserving extension of the champion's dictionary, so the interned
// context the fleet routes on is valid inside the adjacency matrix too.
func buildReranker(spec string, champion core.Recommender) (fleet.Reranker, error) {
	path, lambda := spec, 0.0
	if p, l, ok := strings.Cut(spec, ":"); ok {
		v, err := strconv.ParseFloat(l, 64)
		if err != nil {
			return nil, fmt.Errorf("malformed -rerank lambda in %q: %v", spec, err)
		}
		path, lambda = p, v
	}
	rec, err := loadModel(path)
	if err != nil {
		return nil, fmt.Errorf("-rerank %s: %v", path, err)
	}
	adj, ok := rec.Predictor().(*pairwise.Adjacency)
	if !ok {
		return nil, fmt.Errorf("-rerank %s: not a pairwise adjacency model (train with cmd/train -family adjacency)", path)
	}
	if !rec.Dict().Extends(champion.Dict()) {
		return nil, fmt.Errorf("-rerank %s: adjacency dictionary (hash %x) does not extend the champion's (hash %x)",
			path, rec.Dict().Hash(), champion.Dict().Hash())
	}
	return fleet.NewPairwiseReranker(adj, rec.Dict(), lambda)
}

// buildRouterHandler assembles the router role: a consistent-hash ring over
// an in-process loopback (integer -shards, sharing one -model) or remote
// shard URLs, replicated and failure-policied per ropts.
func buildRouterHandler(shards string, vnodes int, modelPath string, topN, cacheCap int, ropts fleet.RouterOptions) *fleet.ShardRouter {
	if shards == "" {
		log.Fatal("-role router needs -shards (an integer for a loopback ring, or comma-separated shard URLs)")
	}
	if n, err := strconv.Atoi(shards); err == nil {
		if n < 1 {
			log.Fatalf("-shards %d: need at least one shard", n)
		}
		rec, err := loadModel(modelPath)
		if err != nil {
			log.Fatal(err)
		}
		logModelShape("", rec)
		perShardCache := 0
		if cacheCap > 0 {
			perShardCache = (cacheCap + n - 1) / n
		}
		handlers := make([]http.Handler, n)
		for i := range handlers {
			handlers[i] = serve.New(rec, serve.Options{
				DefaultN:      topN,
				CacheCapacity: perShardCache,
				// POST /reload on the router broadcasts here, so a loopback
				// ring hot-reloads like any other deployment. Each partition
				// remaps the file independently; pages stay shared.
				ReloadFunc: func() (core.Recommender, error) { return loadModel(modelPath) },
			})
		}
		router, err := fleet.NewShardRouterOpts(fleet.NewRing(n, vnodes), fleet.NewLoopbackTransport(handlers...), ropts)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("loopback ring: %d shards over one model, %d virtual nodes/shard, R=%d",
			n, ringVnodes(vnodes), router.Replicas())
		return router
	}
	urls := strings.Split(shards, ",")
	// nil client: NewHTTPTransport supplies dial/response timeouts and a
	// sized connection pool; -shard-timeout bounds each attempt via ctx.
	tr, err := fleet.NewHTTPTransport(urls, nil)
	if err != nil {
		log.Fatal(err)
	}
	router, err := fleet.NewShardRouterOpts(fleet.NewRing(len(urls), vnodes), tr, ropts)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("HTTP ring: %d shards (%s), %d virtual nodes/shard, R=%d",
		len(urls), shards, ringVnodes(vnodes), router.Replicas())
	return router
}

func ringVnodes(vnodes int) int {
	if vnodes <= 0 {
		return fleet.DefaultVirtualNodes
	}
	return vnodes
}

// armSpec is one parsed -arms entry.
type armSpec struct {
	name   string
	path   string
	weight uint32
}

// parseArms decodes -arms: comma-separated name=path[:weight] entries,
// weight defaulting to 1 and 0 marking shadow arms.
func parseArms(s string) ([]armSpec, error) {
	var specs []armSpec
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, rest, ok := strings.Cut(entry, "=")
		if !ok || name == "" || rest == "" {
			return nil, fmt.Errorf("malformed -arms entry %q (want name=path[:weight])", entry)
		}
		spec := armSpec{name: name, path: rest, weight: 1}
		if path, w, ok := strings.Cut(rest, ":"); ok {
			weight, err := strconv.ParseUint(w, 10, 32)
			if err != nil {
				return nil, fmt.Errorf("malformed weight in -arms entry %q: %v", entry, err)
			}
			spec.path = path
			spec.weight = uint32(weight)
		}
		specs = append(specs, spec)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("-arms given but no arms parsed from %q", s)
	}
	return specs, nil
}

// logModelShape logs the loaded model's serving shape (the compiled-PST line
// operators grep for).
func logModelShape(name string, rec core.Recommender) {
	label := ""
	if name != "" {
		label = fmt.Sprintf(" %q", name)
	}
	if cm := rec.CompiledModel(); cm != nil {
		form := "exact"
		if cm.Quantised() {
			form = "quantised"
		}
		log.Printf("model%s loaded: %d known queries, %s compiled PST with %d nodes / %d followers (depth %d, %d components)",
			label, rec.Dict().Len(), form, cm.Nodes(), cm.Followers(), cm.Depth(), cm.Components())
		return
	}
	if p := rec.Predictor(); p != nil {
		shape := p.Shape()
		log.Printf("model%s loaded: %d known queries, %s family model (%s, %d states, depth %d)",
			label, rec.Dict().Len(), shape.Family, shape.Label, shape.States, shape.Depth)
		return
	}
	log.Printf("model%s loaded: %d known queries, serving interpreted mixture (compile unavailable)",
		label, rec.Dict().Len())
}
