// Command experiments regenerates every table and figure of the paper's
// evaluation section (Sec. V) on the synthetic log substrate and prints them
// as text tables/charts. See EXPERIMENTS.md for the recorded output and the
// paper-vs-measured comparison.
//
// Usage:
//
//	experiments [-train 120000] [-test 30000] [-threshold 2] [-quick]
package main

import (
	"flag"
	"log"
	"os"

	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		train     = flag.Int("train", 120000, "training sessions to generate")
		test      = flag.Int("test", 30000, "test sessions to generate")
		threshold = flag.Uint64("threshold", 2, "data-reduction frequency threshold")
		quick     = flag.Bool("quick", false, "skip the slow Fig. 12 timing sweep and ablations")
		studyPer  = flag.Int("study", 500, "user-study contexts per context length")
	)
	flag.Parse()

	opt := experiments.DefaultRunOptions()
	opt.Corpus.TrainSessions = *train
	opt.Corpus.TestSessions = *test
	opt.Corpus.ReductionThreshold = *threshold
	opt.SkipFig12 = *quick
	opt.SkipAblation = *quick
	opt.SkipExtensions = *quick
	opt.StudyPerLen = *studyPer

	if _, _, err := experiments.RunAll(os.Stdout, opt); err != nil {
		log.Fatal(err)
	}
}
