// Command train builds an MVMM query-recommendation model from a raw search
// log and persists it for cmd/recommend.
//
// Usage:
//
//	train -log search.log -model model.bin [-threshold 5] [-epsilons 0,0.05,0.1]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("train: ")
	var (
		logPath   = flag.String("log", "", "raw search log (required)")
		modelPath = flag.String("model", "model.bin", "output model file")
		threshold = flag.Int("threshold", 5, "data-reduction frequency threshold (paper: 5; -1 disables)")
		epsilons  = flag.String("epsilons", "", "comma-separated VMM growth thresholds (default: the paper's 0.0..0.1)")
	)
	flag.Parse()
	if *logPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	cfg := core.DefaultConfig()
	cfg.ReductionThreshold = *threshold
	if *epsilons != "" {
		var eps []float64
		for _, part := range strings.Split(*epsilons, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				log.Fatalf("bad epsilon %q: %v", part, err)
			}
			eps = append(eps, v)
		}
		cfg.Epsilons = eps
	}

	f, err := os.Open(*logPath)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	start := time.Now()
	rec, err := core.TrainFromLog(f, cfg)
	if err != nil {
		log.Fatal(err)
	}
	st := rec.Stats()
	fmt.Fprintf(os.Stderr, "train: %d sessions, %d searches, %d unique queries, mean length %.2f (%.1fs)\n",
		st.Sessions, st.Searches, st.UniqueQueries, st.MeanLength(), time.Since(start).Seconds())

	out, err := os.Create(*modelPath)
	if err != nil {
		log.Fatal(err)
	}
	defer out.Close()
	if err := rec.Save(out); err != nil {
		log.Fatal(err)
	}
	info, _ := out.Stat()
	if info != nil {
		fmt.Fprintf(os.Stderr, "train: model saved to %s (%d bytes)\n", *modelPath, info.Size())
	}
}
