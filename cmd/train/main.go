// Command train builds a query-recommendation model from a raw search log
// and persists it for cmd/recommend and cmd/serve.
//
// Usage:
//
//	train -log search.log -model model.bin [-threshold 5] [-epsilons 0,0.05,0.1]
//	train -log search.log -model hmm.bin -family hmm
//
// The default (no -family) trains the paper's MVMM pipeline and writes a
// QRECV container. With -family one of the other paper model families is
// trained instead and written as a QRECF001 container, loadable by cmd/serve
// as a fleet arm (or, for adjacency, as a -rerank model):
//
//	hmm           intent HMM over sessions (the paper's future-work model)
//	cluster       click-through clustering (related work, Sec. II)
//	adjacency     pair-wise adjacency baseline
//	cooccurrence  pair-wise co-occurrence baseline
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/compiled"
	"repro/internal/core"
	"repro/internal/hmm"
	"repro/internal/logfmt"
	"repro/internal/pairwise"
	"repro/internal/query"
	"repro/internal/session"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("train: ")
	var (
		logPath   = flag.String("log", "", "raw search log (required)")
		modelPath = flag.String("model", "model.bin", "output model file")
		threshold = flag.Int("threshold", 5, "data-reduction frequency threshold (paper: 5; -1 disables)")
		epsilons  = flag.String("epsilons", "", "comma-separated VMM growth thresholds (default: the paper's 0.0..0.1)")
		family    = flag.String("family", "", "train a non-MVMM model family instead: hmm, cluster, adjacency or cooccurrence")
		format    = flag.String("format", "QRECV005", "MVMM container version to write: QRECV001..QRECV005 (V005 = compact CPS5 blob, V004 = quantised, V003 = exact compiled)")
	)
	flag.Parse()
	if *logPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	if *family != "" {
		trainFamily(*family, *logPath, *modelPath, *threshold)
		return
	}

	cfg := core.DefaultConfig()
	cfg.ReductionThreshold = *threshold
	if *epsilons != "" {
		var eps []float64
		for _, part := range strings.Split(*epsilons, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				log.Fatalf("bad epsilon %q: %v", part, err)
			}
			eps = append(eps, v)
		}
		cfg.Epsilons = eps
	}

	f, err := os.Open(*logPath)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	start := time.Now()
	rec, err := core.TrainFromLog(f, cfg)
	if err != nil {
		log.Fatal(err)
	}
	st := rec.Stats()
	fmt.Fprintf(os.Stderr, "train: %d sessions, %d searches, %d unique queries, mean length %.2f (%.1fs)\n",
		st.Sessions, st.Searches, st.UniqueQueries, st.MeanLength(), time.Since(start).Seconds())

	out, err := os.Create(*modelPath)
	if err != nil {
		log.Fatal(err)
	}
	defer out.Close()
	if err := rec.SaveAs(out, *format); err != nil {
		log.Fatal(err)
	}
	info, _ := out.Stat()
	if info != nil {
		fmt.Fprintf(os.Stderr, "train: model saved to %s (%d bytes)\n", *modelPath, info.Size())
	}
}

// trainFamily trains one of the non-MVMM paper model families from the raw
// log and writes a QRECF001 container that cmd/serve loads as a fleet arm.
func trainFamily(family, logPath, modelPath string, threshold int) {
	f, err := os.Open(logPath)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	start := time.Now()
	dict := query.NewDict()
	var payload io.WriterTo
	switch family {
	case compiled.FamilyCluster:
		// The cluster family trains on the query–URL click graph, not on
		// session sequences.
		g := cluster.NewClickGraph(dict)
		if err := g.AddAll(logfmt.NewReader(f)); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "train: click graph over %d distinct queries\n", g.NumQueries())
		payload = cluster.Build(g, cluster.DefaultConfig())
	case compiled.FamilyHMM, compiled.FamilyAdjacency, compiled.FamilyCooccurrence:
		sessions, err := session.SegmentReader(logfmt.NewReader(f), dict, session.DefaultGap)
		if err != nil {
			log.Fatal(err)
		}
		agg := session.Aggregate(sessions)
		if threshold >= 0 {
			agg, _ = session.Reduce(agg, uint64(threshold))
		}
		st := session.Collect(agg)
		fmt.Fprintf(os.Stderr, "train: %d sessions, %d unique queries, mean length %.2f\n",
			st.Sessions, st.UniqueQueries, st.MeanLength())
		switch family {
		case compiled.FamilyHMM:
			m, err := hmm.Train(agg, hmm.DefaultConfig(dict.Len()))
			if err != nil {
				log.Fatal(err)
			}
			payload = m
		case compiled.FamilyAdjacency:
			payload = pairwise.NewAdjacency(agg, dict.Len())
		case compiled.FamilyCooccurrence:
			payload = pairwise.NewCooccurrence(agg, dict.Len())
		}
	default:
		log.Fatalf("unknown -family %q (want hmm, cluster, adjacency or cooccurrence)", family)
	}
	fmt.Fprintf(os.Stderr, "train: %s model trained (%.1fs)\n", family, time.Since(start).Seconds())

	out, err := os.Create(modelPath)
	if err != nil {
		log.Fatal(err)
	}
	defer out.Close()
	if err := core.SaveFamily(out, family, dict, payload); err != nil {
		log.Fatal(err)
	}
	info, _ := out.Stat()
	if info != nil {
		fmt.Fprintf(os.Stderr, "train: %s model saved to %s (%d bytes)\n", family, modelPath, info.Size())
	}
}
