// Command ingest closes the training loop: it tails a growing query log,
// folds completed sessions into an incremental count store behind a durable
// append-only write-log (crash-safe: tentative segment entries are replayed
// on restart, so no session is double-counted or lost), recompiles a model
// snapshot in the background every -recompile sessions and pushes each new
// generation at a serving fleet as the named challenger arm.
//
// Standalone, pushing at a running `serve -arms ...` fleet:
//
//	ingest -log queries.log -wal ingest.wal -model-out challenger.bin \
//	       -base-from seed.bin -push http://localhost:8080 -push-model challenger
//
// One-shot batch catch-up (drain the log, recompile, exit):
//
//	ingest -log queries.log -wal ingest.wal -model-out model.bin -once
//
// The write-log pins the base vocabulary and session gap: restarting with a
// different -base-from or -gap against the same -wal is refused rather than
// silently mixing incompatible counts. Delete the write-log to start over.
//
// See ARCHITECTURE.md §7 for the write-log byte format and the
// tentative/committed state machine; cmd/serve embeds this same loop behind
// its -ingest-log flag, where /v1/ingest exposes the Status of the loop.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/stream"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ingest: ")
	var (
		logPath   = flag.String("log", "queries.log", "growing source query log to tail (logfmt records)")
		walPath   = flag.String("wal", "ingest.wal", "durable write-log path (created if absent, replayed if present)")
		modelOut  = flag.String("model-out", "challenger.bin", "recompiled snapshot output path (atomic replace)")
		baseFrom  = flag.String("base-from", "", "model file whose dictionary seeds the trainer, keeping every snapshot reload-compatible with it (empty = fresh vocabulary)")
		pushURL   = flag.String("push", "", "serving fleet base URL to push snapshots at (empty = recompile only)")
		pushModel = flag.String("push-model", "challenger", "fleet arm name reloaded on push (POST /v1/reload?model=<name>)")
		gap       = flag.Duration("gap", 30*time.Minute, "session gap: queries of one machine further apart start a new session")
		segment   = flag.Int("segment-records", 256, "records folded into one write-log segment entry")
		recompile = flag.Uint64("recompile", 5000, "completed sessions between background recompiles")
		threshold = flag.Int("threshold", 2, "drop session patterns seen fewer times at recompile (-1 = keep all)")
		poll      = flag.Duration("poll", 200*time.Millisecond, "tail poll interval when caught up with the log writer")
		once      = flag.Bool("once", false, "drain the log, recompile once and exit (batch catch-up mode)")
	)
	flag.Parse()

	cfg := stream.Config{
		LogPath:           *logPath,
		WALPath:           *walPath,
		ModelPath:         *modelOut,
		Train:             core.Config{ReductionThreshold: *threshold, SessionGap: *gap},
		SegmentRecords:    *segment,
		RecompileSessions: *recompile,
	}
	if *baseFrom != "" {
		base, err := core.LoadAnyPath(*baseFrom, core.LoadOptions{})
		if err != nil {
			log.Fatalf("-base-from %s: %v", *baseFrom, err)
		}
		cfg.BaseVocab = base.Dict().Strings()
		log.Printf("trainer seeded with %d base queries from %s (snapshots stay reload-compatible)",
			len(cfg.BaseVocab), *baseFrom)
	}
	if *pushURL != "" {
		target := *pushURL + "/v1/reload?model=" + *pushModel
		client := &http.Client{Timeout: 30 * time.Second}
		cfg.Push = func(modelPath string) error {
			resp, err := client.Post(target, "", nil)
			if err != nil {
				return err
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("POST %s: HTTP %d", target, resp.StatusCode)
			}
			log.Printf("pushed %s at %s", modelPath, target)
			return nil
		}
	}

	ing, err := stream.NewIngester(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer ing.Close()
	st := ing.Status()
	if st.Replayed > 0 || st.TornTailBytes > 0 {
		log.Printf("write-log replayed: %d segment entries (%d sessions, vocab %d), %d torn bytes discarded, resuming at log offset %d",
			st.Replayed, st.Sessions, st.Vocab, st.TornTailBytes, st.LogOffset)
	}

	if *once {
		for {
			progressed, err := ing.Step()
			if err != nil {
				log.Fatal(err)
			}
			if !progressed {
				break
			}
		}
		final := ing.Status()
		log.Printf("drained: %d sessions (%d still open) from %d log bytes, %d recompiles, %d pushes",
			final.Sessions, final.OpenSessions, final.LogOffset, final.Recompiles, final.Pushes)
		return
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	go func() {
		t := time.NewTicker(time.Minute)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				s := ing.Status()
				log.Printf("tailing: offset %d, %d sessions (%d open), %d recompiles, %d pushes (%d failed)",
					s.LogOffset, s.Sessions, s.OpenSessions, s.Recompiles, s.Pushes, s.PushErrors)
			}
		}
	}()
	log.Printf("tailing %s (write-log %s, recompile every %d sessions)", *logPath, *walPath, *recompile)
	if err := ing.Run(ctx, *poll); err != nil && ctx.Err() == nil {
		log.Fatal(err)
	}
	log.Print("bye")
}
