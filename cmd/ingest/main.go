// Command ingest closes the training loop: it tails a growing query log,
// folds completed sessions into an incremental count store behind a durable
// append-only write-log (crash-safe: tentative segment entries are replayed
// on restart, so no session is double-counted or lost), recompiles a model
// snapshot in the background every -recompile sessions and pushes each new
// generation at a serving fleet as the named challenger arm.
//
// Standalone, pushing at a running `serve -arms ...` fleet:
//
//	ingest -log queries.log -wal ingest.wal -model-out challenger.bin \
//	       -base-from seed.bin -push http://localhost:8080 -push-model challenger
//
// One-shot batch catch-up (drain the log, recompile, exit):
//
//	ingest -log queries.log -wal ingest.wal -model-out model.bin -once
//
// The write-log pins the base vocabulary and session gap: restarting with a
// different -base-from or -gap against the same -wal is refused rather than
// silently mixing incompatible counts. Delete the write-log to start over.
//
// See ARCHITECTURE.md §7 for the write-log byte format and the
// tentative/committed state machine; cmd/serve embeds this same loop behind
// its -ingest-log flag, where /v1/ingest exposes the Status of the loop.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/stream"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ingest: ")
	var (
		logPath     = flag.String("log", "queries.log", "growing source query log to tail (logfmt records)")
		walPath     = flag.String("wal", "ingest.wal", "durable write-log path (created if absent, replayed if present)")
		modelOut    = flag.String("model-out", "challenger.bin", "recompiled snapshot output path (atomic replace)")
		baseFrom    = flag.String("base-from", "", "model file whose dictionary seeds the trainer, keeping every snapshot reload-compatible with it (empty = fresh vocabulary)")
		pushURL     = flag.String("push", "", "serving fleet base URL to push snapshots at (empty = recompile only)")
		pushModel   = flag.String("push-model", "challenger", "fleet arm name reloaded on push (POST /v1/reload?model=<name>)")
		gap         = flag.Duration("gap", 30*time.Minute, "session gap: queries of one machine further apart start a new session")
		segment     = flag.Int("segment-records", 256, "records folded into one write-log segment entry")
		recompile   = flag.Uint64("recompile", 5000, "completed sessions between background recompiles")
		threshold   = flag.Int("threshold", 2, "drop session patterns seen fewer times at recompile (-1 = keep all)")
		poll        = flag.Duration("poll", 200*time.Millisecond, "tail poll interval when caught up with the log writer")
		once        = flag.Bool("once", false, "drain the log, recompile once and exit (batch catch-up mode)")
		metricsAddr = flag.String("metrics-addr", "", "optional listen address serving /v1/metrics (Prometheus text) and /v1/traces for the standalone loop (empty = no listener)")
	)
	flag.Parse()

	oreg := obs.NewRegistry()
	// Tail-sample against the segment-fold histogram: a retained ingest trace
	// is one whose whole step ran slower than recent p99 folds (or errored).
	tracer := obs.NewTracer(128, oreg.Histogram("ingest_segment_us"))

	cfg := stream.Config{
		LogPath:           *logPath,
		WALPath:           *walPath,
		ModelPath:         *modelOut,
		Train:             core.Config{ReductionThreshold: *threshold, SessionGap: *gap},
		SegmentRecords:    *segment,
		RecompileSessions: *recompile,
		Obs:               oreg,
		Tracer:            tracer,
	}
	if *baseFrom != "" {
		base, err := core.LoadAnyPath(*baseFrom, core.LoadOptions{})
		if err != nil {
			log.Fatalf("-base-from %s: %v", *baseFrom, err)
		}
		cfg.BaseVocab = base.Dict().Strings()
		log.Printf("trainer seeded with %d base queries from %s (snapshots stay reload-compatible)",
			len(cfg.BaseVocab), *baseFrom)
	}
	if *pushURL != "" {
		target := *pushURL + "/v1/reload?model=" + *pushModel
		client := &http.Client{Timeout: 30 * time.Second}
		cfg.Push = func(modelPath string) error {
			resp, err := client.Post(target, "", nil)
			if err != nil {
				return err
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("POST %s: HTTP %d", target, resp.StatusCode)
			}
			log.Printf("pushed %s at %s", modelPath, target)
			return nil
		}
	}

	ing, err := stream.NewIngester(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer ing.Close()
	st := ing.Status()
	if st.Replayed > 0 || st.TornTailBytes > 0 {
		log.Printf("write-log replayed: %d segment entries (%d sessions, vocab %d), %d torn bytes discarded, resuming at log offset %d",
			st.Replayed, st.Sessions, st.Vocab, st.TornTailBytes, st.LogOffset)
	}

	if *metricsAddr != "" {
		go func() {
			if err := http.ListenAndServe(*metricsAddr, obsHandler(oreg, tracer, ing)); err != nil {
				log.Printf("metrics listener %s: %v", *metricsAddr, err)
			}
		}()
		log.Printf("metrics: /v1/metrics and /v1/traces on %s", *metricsAddr)
	}

	if *once {
		for {
			progressed, err := ing.Step()
			if err != nil {
				log.Fatal(err)
			}
			if !progressed {
				break
			}
		}
		final := ing.Status()
		log.Printf("drained: %d sessions (%d still open) from %d log bytes, %d recompiles, %d pushes",
			final.Sessions, final.OpenSessions, final.LogOffset, final.Recompiles, final.Pushes)
		return
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	go func() {
		t := time.NewTicker(time.Minute)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				s := ing.Status()
				log.Printf("tailing: offset %d, %d sessions (%d open), %d recompiles, %d pushes (%d failed)",
					s.LogOffset, s.Sessions, s.OpenSessions, s.Recompiles, s.Pushes, s.PushErrors)
			}
		}
	}()
	log.Printf("tailing %s (write-log %s, recompile every %d sessions)", *logPath, *walPath, *recompile)
	if err := ing.Run(ctx, *poll); err != nil && ctx.Err() == nil {
		log.Fatal(err)
	}
	log.Print("bye")
}

// obsHandler serves the standalone loop's observability surface: Prometheus
// text on /metrics and /v1/metrics, retained ingest traces on /v1/traces
// (same query parameters as the serving endpoints: min_us, error, limit)
// and the loop Status on /v1/ingest.
func obsHandler(reg *obs.Registry, tracer *obs.Tracer, ing *stream.Ingester) http.Handler {
	mux := http.NewServeMux()
	writeProm := func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	}
	mux.HandleFunc("/metrics", writeProm)
	mux.HandleFunc("/v1/metrics", writeProm)
	mux.HandleFunc("/v1/ingest", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(ing.Status())
	})
	mux.HandleFunc("/v1/traces", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		minMicros, _ := strconv.ParseInt(q.Get("min_us"), 10, 64)
		onlyErrors := q.Get("error") == "1" || strings.EqualFold(q.Get("error"), "true")
		limit := 0
		if n, err := strconv.Atoi(q.Get("limit")); err == nil {
			limit = n
		}
		views := tracer.Snapshot(minMicros, onlyErrors, limit)
		resp := struct {
			SlowThresholdMicros int64           `json:"slow_threshold_us,omitempty"`
			Count               int             `json:"count"`
			Traces              []obs.TraceView `json:"traces"`
		}{Count: len(views), Traces: views}
		if th := tracer.SlowThresholdMicros(); th < math.MaxInt64 {
			resp.SlowThresholdMicros = th
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(resp)
	})
	return mux
}
