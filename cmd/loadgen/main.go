// Command loadgen replays synthetic query contexts against a running
// cmd/serve instance and reports throughput and latency quantiles — the
// load side of the paper's "real-time query recommendation" deployment
// claim. Contexts are drawn from the same generator as the training
// pipeline (internal/loggen), so their popularity follows the power law of
// real logs (Fig. 6) and the server's cache sees realistic head/tail skew.
//
// Against a fleet-mode server (cmd/serve -arms) the replay is arm-aware:
// every /suggest response carries the serving arm in X-Serve-Arm, and the
// report breaks request counts, traffic share and latency quantiles out per
// arm — the client-side half of an online A/B comparison (the server's
// /metrics holds the matching per-arm view).
//
// Usage:
//
//	loadgen -addr http://localhost:8080 -requests 20000 -c 16
//	loadgen -addr http://localhost:8080 -batch 32          # POST /suggest/batch
//	loadgen -addr http://localhost:8080 -batch 32 -stream  # NDJSON streaming
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"math/rand"
	"net/http"
	"net/url"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fleet"
	"repro/internal/loggen"
	"repro/internal/serve"
	"repro/internal/stream"
)

// failoverStats aggregates the replay's view of the router's failure policy:
// responses that were failed over or hedged (from X-Serve-Attempts /
// X-Serve-Hedge / X-Serve-Failovers headers) and NDJSON error lines — the
// quantified availability number a chaos run reads.
type failoverStats struct {
	failedOver atomic.Int64 // GET responses served after >1 attempt
	hedgedWon  atomic.Int64 // GET responses won by a hedged attempt
	batchItems atomic.Int64 // buffered batch items served by a non-primary
	lines      atomic.Int64 // NDJSON result lines seen
	errLines   atomic.Int64 // NDJSON error lines seen
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")
	var (
		addr     = flag.String("addr", "http://localhost:8080", "server base URL")
		requests = flag.Int("requests", 10000, "total requests to send")
		conc     = flag.Int("c", 16, "concurrent workers")
		topN     = flag.Int("n", 5, "suggestions per context")
		batch    = flag.Int("batch", 0, "contexts per POST /suggest/batch request (0 = single GETs)")
		stream   = flag.Bool("stream", false, "request NDJSON streaming batch responses (?stream=1) and report time-to-first-result; requires -batch")
		sessions = flag.Int("sessions", 4000, "synthetic sessions to derive contexts from")
		seed     = flag.Int64("seed", 1, "context-replay RNG seed")
	)
	flag.Parse()
	if *stream && *batch <= 0 {
		log.Fatal("-stream needs -batch > 0 (streaming is a batch-endpoint feature)")
	}

	contexts := buildContexts(*sessions, *seed)
	log.Printf("replaying %d contexts (%d requests, %d workers, batch=%d, stream=%v) against %s",
		len(contexts), *requests, *conc, *batch, *stream, *addr)

	client := &http.Client{
		Timeout: 10 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        *conc * 2,
			MaxIdleConnsPerHost: *conc * 2,
		},
	}

	var (
		issued   atomic.Int64
		errCount atomic.Int64
		fstats   failoverStats
		wg       sync.WaitGroup
		latMu    sync.Mutex
		lats     []time.Duration
		firsts   []time.Duration
		armLats  = make(map[string][]time.Duration)
	)
	// Report how the server's model materialised (mmap vs heap, and how
	// fast) so cold-start wins are visible from the traffic side too.
	if h := fetchHealth(client, *addr); h != nil && h.LoadMode != "" {
		log.Printf("server model: load mode %s (%s), loaded in %dus, generation %d",
			h.LoadMode, h.LoadVersion, h.LoadMicros, h.Generation)
	}

	// Snapshot allocator/GC state on both sides of the run so regressions in
	// the serving path show up here, not just in microbenchmarks.
	serverBefore := fetchMetrics(client, *addr)
	var memBefore runtime.MemStats
	runtime.ReadMemStats(&memBefore)
	start := time.Now()
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(worker)))
			local := make([]time.Duration, 0, *requests / *conc + 1)
			var localFirsts []time.Duration
			localArms := make(map[string][]time.Duration)
			for issued.Add(1) <= int64(*requests) {
				var err error
				var took, first time.Duration
				var arm string
				if *batch > 0 {
					took, first, err = doBatch(client, *addr, contexts, rng, *batch, *topN, *stream, &fstats)
				} else {
					took, arm, err = doSingle(client, *addr, contexts[rng.Intn(len(contexts))], *topN, &fstats)
				}
				if err != nil {
					errCount.Add(1)
					continue
				}
				local = append(local, took)
				if *stream {
					localFirsts = append(localFirsts, first)
				}
				if arm != "" {
					localArms[arm] = append(localArms[arm], took)
				}
			}
			latMu.Lock()
			lats = append(lats, local...)
			firsts = append(firsts, localFirsts...)
			for arm, ls := range localArms {
				armLats[arm] = append(armLats[arm], ls...)
			}
			latMu.Unlock()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	var memAfter runtime.MemStats
	runtime.ReadMemStats(&memAfter)

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	ok := len(lats)
	ctxServed := ok
	if *batch > 0 {
		ctxServed = ok * *batch
	}
	fmt.Printf("requests:    %d ok, %d errors in %s\n", ok, errCount.Load(), elapsed.Round(time.Millisecond))
	fmt.Printf("throughput:  %.0f req/s (%.0f contexts/s)\n",
		float64(ok)/elapsed.Seconds(), float64(ctxServed)/elapsed.Seconds())
	if ok > 0 {
		fmt.Printf("latency:     p50 %s  p90 %s  p99 %s  max %s\n",
			pct(lats, 0.50), pct(lats, 0.90), pct(lats, 0.99), lats[ok-1])
	}
	if len(firsts) > 0 {
		// Streaming's headline win: how long until the first NDJSON result
		// line lands, vs the full-batch latency above.
		sort.Slice(firsts, func(i, j int) bool { return firsts[i] < firsts[j] })
		fmt.Printf("first-result: p50 %s  p90 %s  p99 %s  max %s\n",
			pct(firsts, 0.50), pct(firsts, 0.90), pct(firsts, 0.99), firsts[len(firsts)-1])
	}
	printArmReport(armLats, ok)
	printFailoverReport(&fstats, ok)
	printClientMem(memBefore, memAfter, ok)
	printServerMetrics(client, *addr, serverBefore, ctxServed)
	printRouterMetrics(client, *addr)
	printIngestStatus(client, *addr)
}

// printFailoverReport summarises the failure policy's client-visible work:
// how many responses needed a failover or were won by a hedge, and the NDJSON
// error-line rate — zero across a chaos run at R>=2 is the availability
// claim, quantified.
func printFailoverReport(f *failoverStats, ok int) {
	fo, hw, bi := f.failedOver.Load(), f.hedgedWon.Load(), f.batchItems.Load()
	lines, errs := f.lines.Load(), f.errLines.Load()
	if fo == 0 && hw == 0 && bi == 0 && lines == 0 {
		return
	}
	if ok == 0 {
		ok = 1
	}
	fmt.Printf("failover:    %d multi-attempt GETs (%.2f%%), %d hedge wins, %d failed-over batch items\n",
		fo, 100*float64(fo)/float64(ok), hw, bi)
	if lines > 0 {
		fmt.Printf("stream:      %d lines, %d error lines (%.3f%% error-line rate)\n",
			lines, errs, 100*float64(errs)/float64(lines))
	}
}

// printClientMem reports the load generator's own runtime.ReadMemStats
// deltas across the run — the client-side allocation and GC pause budget.
func printClientMem(before, after runtime.MemStats, ok int) {
	if ok == 0 {
		ok = 1
	}
	fmt.Printf("client mem:  %.1f allocs/req, %.1f MiB allocated, %d GCs, %s total GC pause\n",
		float64(after.Mallocs-before.Mallocs)/float64(ok),
		float64(after.TotalAlloc-before.TotalAlloc)/(1<<20),
		after.NumGC-before.NumGC,
		(time.Duration(after.PauseTotalNs-before.PauseTotalNs) * time.Nanosecond).Round(time.Microsecond))
}

// buildContexts derives every proper prefix of the generated sessions as a
// replayable context. Identical sessions recur across the stream, so hot
// contexts repeat with realistic skew.
func buildContexts(n int, seed int64) [][]string {
	cfg := loggen.DefaultConfig()
	cfg.Seed = seed
	gen, err := loggen.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	var contexts [][]string
	for _, ls := range gen.GenerateSessions(n) {
		for l := 1; l < len(ls.Queries); l++ {
			contexts = append(contexts, ls.Queries[:l])
		}
	}
	if len(contexts) == 0 {
		log.Fatal("no contexts generated")
	}
	return contexts
}

// printArmReport breaks the replay out per serving arm when the server
// labelled its responses (fleet mode): request share and latency quantiles
// side by side, the numbers an A/B rollout decision reads.
func printArmReport(armLats map[string][]time.Duration, ok int) {
	if len(armLats) == 0 || ok == 0 {
		return
	}
	arms := make([]string, 0, len(armLats))
	for arm := range armLats {
		arms = append(arms, arm)
	}
	sort.Strings(arms)
	for _, arm := range arms {
		ls := armLats[arm]
		sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
		fmt.Printf("arm %-12s %6d req (%5.1f%%)  p50 %s  p90 %s  p99 %s\n",
			arm+":", len(ls), 100*float64(len(ls))/float64(ok),
			pct(ls, 0.50), pct(ls, 0.90), pct(ls, 0.99))
	}
}

func doSingle(client *http.Client, addr string, context []string, n int, fstats *failoverStats) (time.Duration, string, error) {
	v := url.Values{}
	for _, q := range context {
		v.Add("q", q)
	}
	v.Set("n", strconv.Itoa(n))
	start := time.Now()
	resp, err := client.Get(addr + "/suggest?" + v.Encode())
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return 0, "", err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, "", fmt.Errorf("status %d", resp.StatusCode)
	}
	// Fleet mode labels the serving arm; shard routers label the replica.
	arm := resp.Header.Get("X-Serve-Arm")
	if arm == "" {
		if shard := resp.Header.Get("X-Serve-Shard"); shard != "" {
			arm = "shard-" + shard
		}
	}
	// Replicated routers label how hard they worked for the answer.
	if a := resp.Header.Get("X-Serve-Attempts"); a != "" && a != "1" {
		fstats.failedOver.Add(1)
	}
	if resp.Header.Get("X-Serve-Hedge") == "won" {
		fstats.hedgedWon.Add(1)
	}
	return time.Since(start), arm, nil
}

// doBatch issues one batch request. In stream mode it hits the NDJSON
// endpoint (/v1/suggest/batch?stream=1), clocks the first result line
// separately from the full drain, and checks every line parses and the item
// count matches the batch — the client-side contract of incremental serving.
// The returned first duration is zero when stream is false.
func doBatch(client *http.Client, addr string, contexts [][]string, rng *rand.Rand, size, n int, stream bool, fstats *failoverStats) (took, first time.Duration, err error) {
	req := serve.BatchRequest{Requests: make([]serve.BatchItem, size)}
	for i := range req.Requests {
		req.Requests[i] = serve.BatchItem{Context: contexts[rng.Intn(len(contexts))], N: n}
	}
	body, err := json.Marshal(req)
	if err != nil {
		return 0, 0, err
	}
	path := addr + "/suggest/batch"
	if stream {
		path = addr + "/v1/suggest/batch?stream=1"
	}
	start := time.Now()
	resp, err := client.Post(path, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return 0, 0, fmt.Errorf("status %d", resp.StatusCode)
	}
	if !stream {
		if fo := resp.Header.Get("X-Serve-Failovers"); fo != "" {
			if n, err := strconv.Atoi(fo); err == nil {
				fstats.batchItems.Add(int64(n))
			}
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			return 0, 0, err
		}
		return time.Since(start), 0, nil
	}
	lines := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var line struct {
			Index *int            `json:"index"`
			Error json.RawMessage `json:"error"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil || line.Index == nil {
			return 0, 0, fmt.Errorf("bad NDJSON line %d: %v", lines, err)
		}
		fstats.lines.Add(1)
		if line.Error != nil {
			fstats.errLines.Add(1)
		}
		if lines == 0 {
			first = time.Since(start)
		}
		lines++
	}
	if err := sc.Err(); err != nil {
		return 0, 0, err
	}
	if lines != size {
		return 0, 0, fmt.Errorf("streamed %d lines, want %d", lines, size)
	}
	return time.Since(start), first, nil
}

// pct returns the q-quantile of sorted by the ceiling-rank rule: the
// smallest element with at least ceil(q*n) samples at or below it. The old
// int(q*(n-1)) indexing truncated toward zero and under-reported tail
// quantiles (p99 of 2 samples read the fast one); ceiling-rank never
// under-reports and matches the server's histogram quantiles.
func pct(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i].Round(time.Microsecond)
}

// fetchHealth snapshots the server's /healthz, or nil when unreachable.
func fetchHealth(client *http.Client, addr string) *serve.Health {
	resp, err := client.Get(addr + "/healthz")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	var h serve.Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return nil
	}
	return &h
}

// fetchMetrics snapshots the server's /metrics, or nil when unreachable.
func fetchMetrics(client *http.Client, addr string) *serve.MetricsResponse {
	resp, err := client.Get(addr + "/metrics")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	var m serve.MetricsResponse
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return nil
	}
	return &m
}

// printRouterMetrics reports the router-side failure-policy counters when the
// target is a replicated shard router: retries, failovers, hedges and the
// per-shard breaker states — the server-side half of the chaos availability
// number.
func printRouterMetrics(client *http.Client, addr string) {
	resp, err := client.Get(addr + "/v1/metrics")
	if err != nil {
		return
	}
	defer resp.Body.Close()
	var m fleet.ShardRouterMetrics
	if json.NewDecoder(resp.Body).Decode(&m) != nil || m.Role != "router" || m.Replicas < 2 {
		return
	}
	fmt.Printf("router:      R=%d, %d retries, %d failovers, %d/%d hedges won\n",
		m.Replicas, m.Retries, m.Failovers, m.HedgesWon, m.Hedges)
	for _, h := range m.ShardHealth {
		if h.State != "healthy" || h.Failures > 0 {
			fmt.Printf("  shard %d: %s, %d fails (%d consecutive), %d ejections\n",
				h.Shard, h.State, h.Failures, h.ConsecutiveFailures, h.Ejections)
		}
	}
}

// printIngestStatus reports the server's embedded ingestion loop when one is
// running (GET /v1/ingest answers 404 otherwise): how far the tailer is into
// the source log and how many recompiled snapshots it has pushed at the fleet.
func printIngestStatus(client *http.Client, addr string) {
	resp, err := client.Get(addr + "/v1/ingest")
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return // no ingestion loop in this process
	}
	var st stream.Status
	if json.NewDecoder(resp.Body).Decode(&st) != nil {
		return
	}
	fmt.Printf("ingest:      %d sessions from %d log bytes (%d open), %d recompiles, %d pushes (%d failed), vocab %d\n",
		st.Sessions, st.LogOffset, st.OpenSessions, st.Recompiles, st.Pushes, st.PushErrors, st.Vocab)
	if st.LastError != "" {
		fmt.Printf("  last ingest error: %s\n", st.LastError)
	}
}

func printServerMetrics(client *http.Client, addr string, before *serve.MetricsResponse, ctxServed int) {
	m := fetchMetrics(client, addr)
	if m == nil {
		log.Printf("fetching /metrics failed")
		return
	}
	fmt.Printf("server:      cache hit rate %.1f%% (%d hits / %d misses, %d evictions), "+
		"server-side p50 %dus p99 %dus p999 %dus max %dus, generation %d, compiled nodes %d\n",
		100*m.CacheHitRate, m.Cache.Hits, m.Cache.Misses, m.Cache.Evictions,
		m.P50Micros, m.P99Micros, m.P999Micros, m.MaxMicros, m.ModelGeneration, m.CompiledNodes)
	if len(m.Stages) > 0 {
		names := make([]string, 0, len(m.Stages))
		for name := range m.Stages {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			s := m.Stages[name]
			fmt.Printf("  stage %-12s %8d reqs, p50 %dus p99 %dus p999 %dus max %dus\n",
				name, s.Count, s.P50Micros, s.P99Micros, s.P999Micros, s.MaxMicros)
		}
	}
	if before == nil {
		return
	}
	if ctxServed == 0 {
		ctxServed = 1
	}
	gcPause := time.Duration(m.Runtime.GCPauseTotalMicros-before.Runtime.GCPauseTotalMicros) * time.Microsecond
	fmt.Printf("server mem:  %.1f allocs/context, %.1f MiB allocated, %d GCs, %s total GC pause over the run\n",
		float64(m.Runtime.Mallocs-before.Runtime.Mallocs)/float64(ctxServed),
		float64(m.Runtime.TotalAllocBytes-before.Runtime.TotalAllocBytes)/(1<<20),
		m.Runtime.NumGC-before.Runtime.NumGC, gcPause)
}
