// Command doccheck fails when an exported symbol lacks a doc comment. It is
// the `make check-docs` gate: the serving-critical packages
// (internal/compiled, internal/core) promise their invariants — endianness,
// allocation-free guarantees, format compatibility — in godoc, so an
// undocumented exported symbol is a CI failure, not a style nit.
//
// Usage:
//
//	doccheck ./internal/compiled ./internal/core
//
// For each package directory it parses every non-test file and requires a
// doc comment on: the package clause (in at least one file), every exported
// top-level func, every exported method on an exported type, and every
// exported type/const/var spec (a doc comment on the enclosing group
// covers its members, matching godoc's rendering).
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"log"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("doccheck: ")
	if len(os.Args) < 2 {
		log.Fatal("usage: doccheck <package dir>...")
	}
	bad := 0
	for _, dir := range os.Args[1:] {
		missing, err := checkDir(dir)
		if err != nil {
			log.Fatal(err)
		}
		for _, m := range missing {
			fmt.Println(m)
		}
		bad += len(missing)
	}
	if bad > 0 {
		log.Fatalf("%d exported symbols lack doc comments", bad)
	}
}

// checkDir parses one package directory and returns a report line for every
// undocumented exported symbol.
func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("parsing %s: %v", dir, err)
	}
	var missing []string
	report := func(pos token.Pos, what string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: %s has no doc comment", p.Filename, p.Line, what))
	}
	for _, pkg := range pkgs {
		pkgDocumented := false
		for _, f := range pkg.Files {
			if f.Doc != nil {
				pkgDocumented = true
			}
		}
		if !pkgDocumented {
			missing = append(missing, fmt.Sprintf("%s: package %s has no package doc comment", dir, pkg.Name))
		}
		// Exported types, collected first so methods on unexported types
		// (unreachable through the API) are skipped.
		exportedTypes := map[string]bool{}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					if ts, ok := spec.(*ast.TypeSpec); ok && ts.Name.IsExported() {
						exportedTypes[ts.Name.Name] = true
					}
				}
			}
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || d.Doc != nil {
						continue
					}
					if recv := receiverType(d); recv != "" {
						if exportedTypes[recv] {
							report(d.Pos(), fmt.Sprintf("method %s.%s", recv, d.Name.Name))
						}
						continue
					}
					report(d.Pos(), "func "+d.Name.Name)
				case *ast.GenDecl:
					if d.Doc != nil {
						continue // group doc covers the members
					}
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							if s.Name.IsExported() && s.Doc == nil && s.Comment == nil {
								report(s.Pos(), "type "+s.Name.Name)
							}
						case *ast.ValueSpec:
							if s.Doc != nil || s.Comment != nil {
								continue
							}
							for _, name := range s.Names {
								if name.IsExported() {
									report(name.Pos(), fmt.Sprintf("%s %s", strings.ToLower(d.Tok.String()), name.Name))
								}
							}
						}
					}
				}
			}
		}
	}
	if len(pkgs) == 0 {
		return nil, fmt.Errorf("no Go package in %s", filepath.Clean(dir))
	}
	return missing, nil
}

// receiverType resolves a method's receiver type name, or "" for plain
// functions.
func receiverType(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return ""
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}
