// Modelcompare: train all five approaches of the paper on one corpus and
// print a side-by-side accuracy/coverage comparison — a compact version of
// the paper's Figs. 8-11 for your own data scale.
package main

import (
	"fmt"
	"log"

	"repro/internal/eval"
	"repro/internal/experiments"
	"repro/internal/model"
)

func main() {
	log.SetFlags(0)

	cfg := experiments.SmallCorpusConfig()
	cfg.TrainSessions = 30000
	cfg.TestSessions = 8000
	fmt.Printf("building corpus (%d train / %d test sessions)...\n", cfg.TrainSessions, cfg.TestSessions)
	corpus, err := experiments.BuildCorpus(cfg)
	if err != nil {
		log.Fatal(err)
	}
	models := experiments.TrainModels(corpus)

	methods := []model.Predictor{
		models.Cooc, models.Adj, models.NGram, models.VMM05, models.MVMM,
	}
	fmt.Printf("\n%-18s %10s %10s %10s %10s\n", "model", "NDCG@1", "NDCG@5", "coverage", "log-loss")
	ctxs := corpus.TestContexts(0, 3000)
	covCtxs := corpus.CoverageContexts(0, 0)
	testSample := corpus.TestAgg
	if len(testSample) > 2000 {
		testSample = testSample[:2000]
	}
	for _, m := range methods {
		n1 := eval.MeanNDCG(m, corpus.GroundTruth, ctxs, 1)
		n5 := eval.MeanNDCG(m, corpus.GroundTruth, ctxs, 5)
		cov := eval.Coverage(m, covCtxs)
		ll := eval.LogLoss(m, testSample, corpus.Vocab())
		fmt.Printf("%-18s %10.4f %10.4f %10.4f %10.4f\n", m.Name(), n1.NDCG, n5.NDCG, cov, ll)
	}
	fmt.Println("\nExpected shape (paper): sequence models beat pair-wise on NDCG;")
	fmt.Println("Co-occurrence leads coverage; N-gram coverage is worst; MVMM balances both.")
}
