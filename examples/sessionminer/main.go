// Sessionminer: use the session pipeline on its own — segment a raw log,
// aggregate, inspect the pattern structure and power law, and print the most
// common reformulation sessions. This is the paper's Sec. V.A data analysis
// as a standalone log-mining tool.
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/logfmt"
	"repro/internal/loggen"
	"repro/internal/query"
	"repro/internal/session"
)

func main() {
	log.SetFlags(0)

	// Stand-in for a real log file.
	genCfg := loggen.DefaultConfig()
	genCfg.Universe.Topics = 100
	gen, err := loggen.New(genCfg)
	if err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	w := logfmt.NewWriter(&buf)
	if _, err := gen.GenerateRecords(50000, w.Write); err != nil {
		log.Fatal(err)
	}
	w.Flush()

	// Segment with the 30-minute rule.
	dict := query.NewDict()
	sessions, err := session.SegmentReader(logfmt.NewReader(&buf), dict, 0)
	if err != nil {
		log.Fatal(err)
	}
	agg := session.Aggregate(sessions)
	st := session.Collect(agg)
	fmt.Printf("segmented %d sessions (%d searches, %d unique queries, mean length %.2f)\n",
		st.Sessions, st.Searches, st.UniqueQueries, st.MeanLength())

	lengths, counts := st.LengthBuckets()
	fmt.Println("\nsession-length histogram:")
	for i, l := range lengths {
		fmt.Printf("  length %d: %d\n", l, counts[i])
	}

	slope, r2 := session.PowerLawFit(session.RankFrequency(agg))
	fmt.Printf("\naggregated-session power law: slope %.2f, R² %.3f\n", slope, r2)

	reduced, mass := session.Reduce(agg, 2)
	fmt.Printf("after reduction (threshold 2): %d/%d aggregated sessions, %.1f%% of mass retained\n",
		len(reduced), len(agg), 100*mass)

	fmt.Println("\nmost frequent multi-query sessions:")
	shown := 0
	for _, s := range reduced {
		if len(s.Queries) < 2 {
			continue
		}
		fmt.Printf("  %6d×  %s\n", s.Count, s.Queries.Format(dict))
		shown++
		if shown >= 10 {
			break
		}
	}

	// Training contexts that would feed the models (Sec. V.A.5).
	ctxs := session.DeriveContexts(reduced)
	fmt.Printf("\nderived %d distinct training contexts\n", len(ctxs))
}
