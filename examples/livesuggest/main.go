// Livesuggest: simulate the online recommendation phase — a stream of user
// sessions arrives and the recommender suggests after every keystroke-free
// query submission, tracking hit-rate@5 against what the user actually did
// next. This is the deployment loop of Sec. IV.B.2 measured end to end,
// including per-query prediction latency.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)

	cfg := experiments.SmallCorpusConfig()
	corpus, err := experiments.BuildCorpus(cfg)
	if err != nil {
		log.Fatal(err)
	}
	rec := core.TrainFromAggregated(corpus.Dict, corpus.TrainAgg, core.Config{
		Epsilons: []float64{0.0, 0.02, 0.05, 0.1},
	})

	// Replay unseen test sessions as live user streams.
	var (
		predictions int
		hits        int
		covered     int
		latency     time.Duration
	)
	replayed := 0
	for _, s := range corpus.TestAgg {
		if len(s.Queries) < 2 {
			continue
		}
		replayed++
		if replayed > 3000 {
			break
		}
		for i := 1; i < len(s.Queries); i++ {
			ctx := make([]string, i)
			for j := 0; j < i; j++ {
				ctx[j] = corpus.Dict.String(s.Queries[j])
			}
			start := time.Now()
			suggestions := core.Recommend(rec, ctx, 5)
			latency += time.Since(start)
			predictions++
			if len(suggestions) == 0 {
				continue
			}
			covered++
			actual := corpus.Dict.String(s.Queries[i])
			for _, sg := range suggestions {
				if sg.Query == actual {
					hits++
					break
				}
			}
		}
	}

	fmt.Printf("replayed sessions:        %d\n", replayed)
	fmt.Printf("prediction opportunities: %d\n", predictions)
	fmt.Printf("covered:                  %d (%.1f%%)\n", covered, 100*float64(covered)/float64(predictions))
	fmt.Printf("hit@5 (of covered):       %d (%.1f%%)\n", hits, 100*float64(hits)/float64(covered))
	fmt.Printf("mean prediction latency:  %v\n", latency/time.Duration(predictions))
	fmt.Println("\nThe paper's O(D) online claim: latency should be microseconds,")
	fmt.Println("independent of training-set size.")
}
