// Quickstart: train an MVMM recommender on a small synthetic log and ask it
// for next-query suggestions — the minimal end-to-end use of the public API.
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/logfmt"
	"repro/internal/loggen"
)

func main() {
	log.SetFlags(0)

	// 1. Generate a small synthetic search log (stand-in for real logs).
	genCfg := loggen.DefaultConfig()
	genCfg.Universe.Topics = 60
	genCfg.Machines = 800
	gen, err := loggen.New(genCfg)
	if err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	w := logfmt.NewWriter(&buf)
	if _, err := gen.GenerateRecords(30000, w.Write); err != nil {
		log.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d raw log records\n", w.Count())

	// 2. Train: 30-minute segmentation, aggregation, reduction, MVMM.
	cfg := core.DefaultConfig()
	cfg.ReductionThreshold = 1
	cfg.Epsilons = []float64{0.0, 0.02, 0.05, 0.1} // smaller mixture for speed
	rec, err := core.TrainFromLog(&buf, cfg)
	if err != nil {
		log.Fatal(err)
	}
	st := rec.Stats()
	fmt.Printf("trained on %d sessions (%d unique queries, mean length %.2f)\n\n",
		st.Sessions, st.UniqueQueries, st.MeanLength())

	// 3. Recommend. Pick a real refinement chain from the generator's
	// universe so the walk-through is meaningful.
	topic := gen.Universe().Topics[0]
	root := topic.Concepts[topic.Roots[0]]
	context := []string{root.Typo} // user starts with a misspelling
	for step := 0; step < 3; step++ {
		fmt.Printf("session so far: %v\n", context)
		suggestions := core.Recommend(rec, context, 5)
		if len(suggestions) == 0 {
			fmt.Println("  (no suggestions)")
			break
		}
		for i, s := range suggestions {
			fmt.Printf("  %d. %-44s %.4g\n", i+1, s.Query, s.Score)
		}
		// Follow the top suggestion, as a satisfied user would.
		context = append(context, suggestions[0].Query)
	}
}
