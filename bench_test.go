// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation section. Each benchmark regenerates the corresponding
// result on a shared small corpus and reports the headline quantity via
// b.ReportMetric, so `go test -bench=. -benchmem` reproduces the whole
// evaluation. cmd/experiments runs the same computations at full scale with
// rendered tables.
package repro_test

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/compiled"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/hmm"
	"repro/internal/logfmt"
	"repro/internal/loggen"
	"repro/internal/markov"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/pairwise"
	"repro/internal/query"
	"repro/internal/serve"
	"repro/internal/store"
	"repro/internal/stream"
)

var (
	benchOnce   sync.Once
	benchCorpus *experiments.Corpus
	benchModels *experiments.Models
	benchErr    error
)

func benchSetup(b *testing.B) (*experiments.Corpus, *experiments.Models) {
	b.Helper()
	benchOnce.Do(func() {
		benchCorpus, benchErr = experiments.BuildCorpus(experiments.SmallCorpusConfig())
		if benchErr == nil {
			benchModels = experiments.TrainModels(benchCorpus)
		}
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchCorpus, benchModels
}

// BenchmarkFig1PatternDistribution classifies 20k sessions into the seven
// pattern types (Fig. 1) and reports the order-sensitive share.
func BenchmarkFig1PatternDistribution(b *testing.B) {
	c, _ := benchSetup(b)
	var r experiments.Fig1Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig1(c, 20000)
	}
	b.ReportMetric(r.OrderSensitive, "order-sensitive-share")
}

// BenchmarkFig2Entropy computes the entropy-vs-context-length curve and
// reports the drop from no context to 4 queries of context.
func BenchmarkFig2Entropy(b *testing.B) {
	c, _ := benchSetup(b)
	var r experiments.Fig2Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig2(c)
	}
	b.ReportMetric(r.Entropy[0]-r.Entropy[4], "entropy-drop-log10")
}

// BenchmarkTable4SessionStats collects the Table IV summary statistics.
func BenchmarkTable4SessionStats(b *testing.B) {
	c, _ := benchSetup(b)
	var r experiments.Table4Result
	for i := 0; i < b.N; i++ {
		r = experiments.Table4(c)
	}
	b.ReportMetric(r.Train.MeanLength(), "mean-session-length")
}

// BenchmarkFig5LengthHistogram builds the pre-reduction length histograms.
func BenchmarkFig5LengthHistogram(b *testing.B) {
	c, _ := benchSetup(b)
	for i := 0; i < b.N; i++ {
		_ = experiments.Fig5(c)
	}
}

// BenchmarkFig6PowerLaw fits the aggregated-session rank/frequency power law
// and reports the training slope.
func BenchmarkFig6PowerLaw(b *testing.B) {
	c, _ := benchSetup(b)
	var r experiments.Fig6Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig6(c)
	}
	b.ReportMetric(-r.TrainSlope, "neg-loglog-slope")
	b.ReportMetric(r.TrainR2, "r-squared")
}

// BenchmarkFig7Reduction re-runs data reduction and the post-reduction
// histograms, reporting retained session mass.
func BenchmarkFig7Reduction(b *testing.B) {
	c, _ := benchSetup(b)
	var r experiments.HistResult
	for i := 0; i < b.N; i++ {
		r = experiments.Fig7(c)
	}
	b.ReportMetric(r.RetainedMass, "retained-mass")
}

// BenchmarkFig8Accuracy evaluates the pair-wise vs sequence NDCG@5 panel and
// reports the MVMM-over-Adjacency advantage at context length 2.
func BenchmarkFig8Accuracy(b *testing.B) {
	c, m := benchSetup(b)
	var panel experiments.AccuracyResult
	for i := 0; i < b.N; i++ {
		panel = experiments.Accuracy(c, m.Fig8Set(), 5)
	}
	idx := map[string]int{}
	for i, name := range panel.Models {
		idx[name] = i
	}
	b.ReportMetric(panel.NDCG[idx["MVMM"]][1]-panel.NDCG[idx["Adjacency"]][1], "mvmm-minus-adj-len2")
}

// BenchmarkFig9MVMMvsVMM evaluates the MVMM-vs-VMM NDCG@5 panel and reports
// MVMM's mean NDCG across context lengths.
func BenchmarkFig9MVMMvsVMM(b *testing.B) {
	c, m := benchSetup(b)
	var panel experiments.AccuracyResult
	for i := 0; i < b.N; i++ {
		panel = experiments.Accuracy(c, m.Fig9Set(), 5)
	}
	var mean float64
	for _, v := range panel.NDCG[0] {
		mean += v
	}
	b.ReportMetric(mean/float64(len(panel.NDCG[0])), "mvmm-mean-ndcg5")
}

// BenchmarkFig10Coverage measures overall coverage and reports MVMM's.
func BenchmarkFig10Coverage(b *testing.B) {
	c, m := benchSetup(b)
	var r experiments.CoverageResult
	for i := 0; i < b.N; i++ {
		r = experiments.Fig10(c, m)
	}
	for i, name := range r.Models {
		if name == "MVMM" {
			b.ReportMetric(r.Coverage[i], "mvmm-coverage")
		}
	}
}

// BenchmarkFig11CoverageByLength measures the coverage decay curves and
// reports the N-gram length-4 / length-1 ratio (the collapse).
func BenchmarkFig11CoverageByLength(b *testing.B) {
	c, m := benchSetup(b)
	var r experiments.CoverageByLenResult
	for i := 0; i < b.N; i++ {
		r = experiments.Fig11(c, m)
	}
	for i, name := range r.Models {
		if name == "N-gram" && r.Coverage[i][0] > 0 {
			b.ReportMetric(r.Coverage[i][3]/r.Coverage[i][0], "ngram-len4-over-len1")
		}
	}
}

// BenchmarkTable6Reasons tallies the unpredictability-reason taxonomy.
func BenchmarkTable6Reasons(b *testing.B) {
	c, m := benchSetup(b)
	for i := 0; i < b.N; i++ {
		_ = experiments.Table6(c, m)
	}
}

// BenchmarkTable7Memory serializes every model and reports the MVMM/VMM
// footprint ratio (paper: marginally more than a single VMM when merged).
func BenchmarkTable7Memory(b *testing.B) {
	_, m := benchSetup(b)
	var r experiments.Table7Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.Table7(m)
		if err != nil {
			b.Fatal(err)
		}
	}
	size := map[string]int64{}
	for i, name := range r.Models {
		size[name] = r.Bytes[i]
	}
	if size["VMM (0)"] > 0 {
		b.ReportMetric(float64(r.MVMMUnion)/float64(r.VMM00Size), "union-over-fulltree-nodes")
	}
}

// BenchmarkFig12TrainingTime runs the training-time scaling sweep and
// reports the worst max/min time-per-session ratio (1 = perfectly linear).
func BenchmarkFig12TrainingTime(b *testing.B) {
	c, _ := benchSetup(b)
	var r experiments.Fig12Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig12(c)
	}
	worst := 0.0
	for i := range r.Models {
		if ratio := r.LinearityRatio(i); ratio > worst {
			worst = ratio
		}
	}
	b.ReportMetric(worst, "worst-linearity-ratio")
}

// BenchmarkTable8UserStudy runs the simulated user evaluation (Table VIII,
// Figs. 13-14) and reports MVMM's precision.
func BenchmarkTable8UserStudy(b *testing.B) {
	c, m := benchSetup(b)
	var r experiments.StudyResult
	for i := 0; i < b.N; i++ {
		r = experiments.UserStudy(c, m, 200)
	}
	for _, ms := range r.Methods {
		if ms.Name == "MVMM" {
			b.ReportMetric(ms.Precision(), "mvmm-precision")
		}
	}
}

// --- micro-benchmarks for the core operations -------------------------------

// BenchmarkTrainVMM measures single-VMM training throughput.
func BenchmarkTrainVMM(b *testing.B) {
	c, _ := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		markov.NewVMM(c.TrainAgg, markov.VMMConfig{Epsilon: 0.05, Vocab: c.Vocab()})
	}
	b.ReportMetric(float64(len(c.TrainAgg)), "sessions")
}

// BenchmarkTrainAdjacency measures baseline training throughput.
func BenchmarkTrainAdjacency(b *testing.B) {
	c, _ := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pairwise.NewAdjacency(c.TrainAgg, c.Vocab())
	}
}

// BenchmarkPredictMVMM measures online prediction latency — the paper's
// O(D) real-time claim (Sec. V.G: "constant time in D").
func BenchmarkPredictMVMM(b *testing.B) {
	c, m := benchSetup(b)
	ctxs := c.TestContexts(2, 256)
	if len(ctxs) == 0 {
		b.Skip("no contexts")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MVMM.Predict(ctxs[i%len(ctxs)], 5)
	}
}

// BenchmarkPredictVMM measures single-VMM prediction latency.
func BenchmarkPredictVMM(b *testing.B) {
	c, m := benchSetup(b)
	ctxs := c.TestContexts(2, 256)
	if len(ctxs) == 0 {
		b.Skip("no contexts")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.VMM05.Predict(ctxs[i%len(ctxs)], 5)
	}
}

// BenchmarkLogLossMVMM measures Eq. (1) evaluation throughput.
func BenchmarkLogLossMVMM(b *testing.B) {
	c, m := benchSetup(b)
	sample := c.TestAgg
	if len(sample) > 500 {
		sample = sample[:500]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eval.LogLoss(m.MVMM, sample, c.Vocab())
	}
}

// BenchmarkSerializeMVMM measures model persistence cost.
func BenchmarkSerializeMVMM(b *testing.B) {
	_, m := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := store.Footprint(m.MVMM); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLogGeneration measures synthetic-log throughput (records/op).
func BenchmarkLogGeneration(b *testing.B) {
	cfg := loggen.DefaultConfig()
	cfg.Universe.Topics = 60
	gen, err := loggen.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ls := gen.Session()
		_ = gen.Records(ls)
	}
}

// BenchmarkSeqKey measures the hot sequence-encoding path.
func BenchmarkSeqKey(b *testing.B) {
	s := query.Seq{1, 2, 3, 4, 5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Key()
	}
}

// --- serving-layer benchmarks ------------------------------------------------

var (
	serveBenchOnce sync.Once
	serveBenchRec  core.Recommender
	serveBenchCtxs [][]string
)

// serveBenchSetup trains an end-to-end recommender on the shared corpus and
// renders a pool of realistic string contexts for the serving benchmarks.
// The mixture uses the paper's full eleven-component ε set — the model the
// deployment claims are about, and the one the compiled single PST merges.
func serveBenchSetup(b *testing.B) (core.Recommender, [][]string) {
	b.Helper()
	c, _ := benchSetup(b)
	serveBenchOnce.Do(func() {
		cfg := core.DefaultConfig()
		cfg.Epsilons = markov.DefaultEpsilons()
		cfg.Mixture.TrainSample = 500
		cfg.Mixture.NewtonIters = 10
		serveBenchRec = core.TrainFromAggregated(c.Dict, c.TrainAgg, cfg)
		for _, ctx := range c.TestContexts(2, 256) {
			qs := make([]string, len(ctx))
			for i, id := range ctx {
				qs[i] = c.Dict.String(id)
			}
			serveBenchCtxs = append(serveBenchCtxs, qs)
		}
	})
	if len(serveBenchCtxs) == 0 {
		b.Skip("no serving contexts")
	}
	return serveBenchRec, serveBenchCtxs
}

// BenchmarkSuggestUncached is the raw model hot path under parallel load:
// every request interns its context and runs the full prediction (through
// the compiled PST since PR 2).
func BenchmarkSuggestUncached(b *testing.B) {
	rec, ctxs := serveBenchSetup(b)
	var seq atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := int(seq.Add(1)) * 31
		for pb.Next() {
			core.Recommend(rec, ctxs[i%len(ctxs)], 5)
			i++
		}
	})
}

// BenchmarkRecommendUncached is the steady-state uncached predict path the
// compiled PST was built for: contexts are pre-interned (as the cache front
// does per request) and suggestions land in a per-goroutine recycled buffer,
// so ns/op is pure model work and allocs/op must be zero.
func BenchmarkRecommendUncached(b *testing.B) {
	rec, _ := serveBenchSetup(b)
	c, _ := benchSetup(b)
	ctxs := c.TestContexts(2, 256)
	if len(ctxs) == 0 {
		b.Skip("no contexts")
	}
	if rec.CompiledModel() == nil {
		b.Fatal("recommender did not compile")
	}
	var seq atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := int(seq.Add(1)) * 31
		buf := make([]core.Suggestion, 0, 8)
		for pb.Next() {
			buf = rec.AppendSuggestions(buf[:0], ctxs[i%len(ctxs)], 5)
			i++
		}
	})
}

// BenchmarkRecommendUncachedInterpreted is the same workload forced through
// the interpreted MVMM — the before side of the compiled-PST comparison.
func BenchmarkRecommendUncachedInterpreted(b *testing.B) {
	rec, _ := serveBenchSetup(b)
	c, _ := benchSetup(b)
	ctxs := c.TestContexts(2, 256)
	if len(ctxs) == 0 {
		b.Skip("no contexts")
	}
	mix := rec.(*core.Engine).Model()
	var seq atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := int(seq.Add(1)) * 31
		for pb.Next() {
			mix.Predict(ctxs[i%len(ctxs)], 5)
			i++
		}
	})
}

// BenchmarkPredictCompiled measures the compiled single-PST descent alone
// (the successor of BenchmarkPredictMVMM's interpreted walk).
func BenchmarkPredictCompiled(b *testing.B) {
	rec, _ := serveBenchSetup(b)
	c, _ := benchSetup(b)
	ctxs := c.TestContexts(2, 256)
	if len(ctxs) == 0 {
		b.Skip("no contexts")
	}
	cm := rec.CompiledModel()
	if cm == nil {
		b.Fatal("recommender did not compile")
	}
	buf := make([]model.Prediction, 0, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = cm.AppendPredictions(buf[:0], ctxs[i%len(ctxs)], 5)
	}
}

// BenchmarkPredictQuantised measures the compiled descent on the quantised
// CPS4 form of the benchmark model — the latency cost (if any) of serving
// fixed-point probabilities instead of float64. allocs/op must stay 0.
func BenchmarkPredictQuantised(b *testing.B) {
	rec, _ := serveBenchSetup(b)
	c, _ := benchSetup(b)
	ctxs := c.TestContexts(2, 256)
	if len(ctxs) == 0 {
		b.Skip("no contexts")
	}
	cm := rec.CompiledModel()
	if cm == nil {
		b.Fatal("recommender did not compile")
	}
	blob, err := cm.AppendFlat4(nil)
	if err != nil {
		b.Fatal(err)
	}
	qm, err := compiled.FromBytes(blob, compiled.ViewAuto)
	if err != nil {
		b.Fatal(err)
	}
	if !qm.Quantised() {
		b.Fatal("CPS4 load is not quantised")
	}
	buf := make([]model.Prediction, 0, 8)
	for _, ctx := range ctxs { // warm the scratch pool to steady state
		buf = qm.AppendPredictions(buf[:0], ctx, 5)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = qm.AppendPredictions(buf[:0], ctxs[i%len(ctxs)], 5)
	}
}

// BenchmarkPredictCPS5 measures the compiled descent on the compact-edge
// CPS5 form — varint-delta follower IDs decoded lazily per matched node.
// allocs/op must stay 0 and ns/op must stay within 15% of the CPS4 descent.
func BenchmarkPredictCPS5(b *testing.B) {
	rec, _ := serveBenchSetup(b)
	c, _ := benchSetup(b)
	ctxs := c.TestContexts(2, 256)
	if len(ctxs) == 0 {
		b.Skip("no contexts")
	}
	cm := rec.CompiledModel()
	if cm == nil {
		b.Fatal("recommender did not compile")
	}
	blob, err := cm.AppendFlat5(nil, false)
	if err != nil {
		b.Fatal(err)
	}
	qm, err := compiled.FromBytes(blob, compiled.ViewAuto)
	if err != nil {
		b.Fatal(err)
	}
	if !qm.Quantised() {
		b.Fatal("CPS5 load is not quantised")
	}
	buf := make([]model.Prediction, 0, 8)
	for _, ctx := range ctxs { // warm the scratch pool to steady state
		buf = qm.AppendPredictions(buf[:0], ctx, 5)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = qm.AppendPredictions(buf[:0], ctxs[i%len(ctxs)], 5)
	}
}

// BenchmarkPredictHMM measures the HMM family arm's serving primitive — the
// pooled-scratch forward pass behind PredictInto — on the shared corpus.
// allocs/op must stay 0: the Predictor contract every fleet arm advertises
// through Shape().ZeroAlloc is benchmark-gated here.
func BenchmarkPredictHMM(b *testing.B) {
	c, _ := benchSetup(b)
	ctxs := c.TestContexts(2, 256)
	if len(ctxs) == 0 {
		b.Skip("no contexts")
	}
	cfg := hmm.DefaultConfig(c.Vocab())
	cfg.States = 8
	cfg.Iterations = 4
	m, err := hmm.Train(c.TrainAgg, cfg)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]model.Prediction, 0, 8)
	for _, ctx := range ctxs { // warm the scratch pool to steady state
		buf = m.PredictInto(buf[:0], ctx, 5)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = m.PredictInto(buf[:0], ctxs[i%len(ctxs)], 5)
	}
}

// BenchmarkRerankPairwise measures the optional second-stage pairwise rerank
// on a champion top-5 answer — the per-request cost of enabling -rerank on a
// fleet arm. allocs/op must stay 0 (pooled blend scratch, recycled dst).
func BenchmarkRerankPairwise(b *testing.B) {
	rec, _ := serveBenchSetup(b)
	c, _ := benchSetup(b)
	ctxs := c.TestContexts(2, 256)
	if len(ctxs) == 0 {
		b.Skip("no contexts")
	}
	adj := pairwise.NewAdjacency(c.TrainAgg, c.Vocab())
	rk, err := fleet.NewPairwiseReranker(adj, rec.Dict(), fleet.DefaultRerankLambda)
	if err != nil {
		b.Fatal(err)
	}
	// Pre-compute the champion answers being reranked (the rerank step's
	// input is a cache-owned immutable slice on the serving path).
	recs := make([][]core.Suggestion, len(ctxs))
	for i, ctx := range ctxs {
		recs[i] = core.RecommendIDs(rec, ctx, 5)
	}
	dst := make([]core.Suggestion, 0, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % len(ctxs)
		dst = rk.Rerank(ctxs[j], recs[j], dst[:0])
	}
}

// BenchmarkCompiledBlobSize re-encodes the benchmark model in both flat
// layouts and reports their byte sizes plus the CPS4/CPS3 ratio — the
// Table VII serving-footprint numbers, tracked in BENCH_serving.json and
// gated (the quantised blob must stay >= 40% smaller, i.e. ratio <= 0.6).
func BenchmarkCompiledBlobSize(b *testing.B) {
	rec, _ := serveBenchSetup(b)
	cm := rec.CompiledModel()
	if cm == nil {
		b.Fatal("recommender did not compile")
	}
	var cps3, cps4 int
	for i := 0; i < b.N; i++ {
		blob3 := cm.AppendFlat(nil)
		blob4, err := cm.AppendFlat4(nil)
		if err != nil {
			b.Fatal(err)
		}
		cps3, cps4 = len(blob3), len(blob4)
	}
	b.ReportMetric(float64(cps3), "cps3-bytes")
	b.ReportMetric(float64(cps4), "cps4-bytes")
	b.ReportMetric(float64(cps4)/float64(cps3), "cps4-over-cps3")
}

// BenchmarkCompiledBlobSizeV5 extends the Table VII footprint tracking to the
// compact-edge tier: CPS4 vs CPS5 bytes plus their ratio, gated so the
// varint-delta encoding must stay >= 20% smaller (ratio <= 0.8).
func BenchmarkCompiledBlobSizeV5(b *testing.B) {
	rec, _ := serveBenchSetup(b)
	cm := rec.CompiledModel()
	if cm == nil {
		b.Fatal("recommender did not compile")
	}
	var cps4, cps5 int
	for i := 0; i < b.N; i++ {
		blob4, err := cm.AppendFlat4(nil)
		if err != nil {
			b.Fatal(err)
		}
		blob5, err := cm.AppendFlat5(nil, false)
		if err != nil {
			b.Fatal(err)
		}
		cps4, cps5 = len(blob4), len(blob5)
	}
	b.ReportMetric(float64(cps4), "cps4-bytes")
	b.ReportMetric(float64(cps5), "cps5-bytes")
	b.ReportMetric(float64(cps5)/float64(cps4), "cps5-over-cps4")
}

// BenchmarkProbCompiled measures the allocation-free mixture probability.
func BenchmarkProbCompiled(b *testing.B) {
	rec, _ := serveBenchSetup(b)
	c, _ := benchSetup(b)
	ctxs := c.TestContexts(2, 256)
	if len(ctxs) == 0 {
		b.Skip("no contexts")
	}
	cm := rec.CompiledModel()
	if cm == nil {
		b.Fatal("recommender did not compile")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := ctxs[i%len(ctxs)]
		cm.Prob(ctx, ctx[len(ctx)-1])
	}
}

// BenchmarkSuggestCached is the same workload through the sharded LRU front
// on repeated contexts — the serving layer's steady state, where the cache
// must beat the uncached path by well over 2x across cores.
func BenchmarkSuggestCached(b *testing.B) {
	rec, ctxs := serveBenchSetup(b)
	sc := cache.NewSuggestCache(0)
	for _, ctx := range ctxs { // warm the cache once
		sc.Recommend(1, rec, ctx, 5)
	}
	var seq atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := int(seq.Add(1)) * 31
		for pb.Next() {
			sc.Recommend(1, rec, ctxs[i%len(ctxs)], 5)
			i++
		}
	})
	b.ReportMetric(sc.Stats().HitRate(), "hit-rate")
}

// benchRecorder is a minimal ResponseWriter with recyclable buffers, so the
// serving benchmarks measure the handler stack rather than
// httptest.NewRecorder's per-request allocations.
type benchRecorder struct {
	code   int
	header http.Header
	body   []byte
}

func (r *benchRecorder) Header() http.Header { return r.header }
func (r *benchRecorder) WriteHeader(c int) {
	if r.code == 0 {
		r.code = c
	}
}
func (r *benchRecorder) Write(p []byte) (int, error) {
	if r.code == 0 {
		r.code = http.StatusOK
	}
	r.body = append(r.body, p...)
	return len(p), nil
}
func (r *benchRecorder) reset() {
	r.code = 0
	r.body = r.body[:0]
}

// BenchmarkServeHTTPCached measures the full handler stack (routing,
// middleware, cache, JSON encoding) on a hot context without network
// overhead — the zero-allocation serving path's headline number.
func BenchmarkServeHTTPCached(b *testing.B) {
	rec, ctxs := serveBenchSetup(b)
	h := serve.NewHandler(rec, 5)
	target := "/suggest?q=" + url.QueryEscape(ctxs[0][0])
	// Warm past the tracer's 256-trace retention ring: while it fills,
	// every request's finish pins its pooled trace and the pool allocates a
	// replacement, which would dominate allocs/op under CI's short
	// -benchtime. At steady state retention is a pointer swap.
	warmReq := httptest.NewRequest(http.MethodGet, target, nil)
	warmRR := &benchRecorder{header: make(http.Header, 4)}
	for i := 0; i < 300; i++ {
		warmRR.reset()
		h.ServeHTTP(warmRR, warmReq)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		req := httptest.NewRequest(http.MethodGet, target, nil)
		rr := &benchRecorder{header: make(http.Header, 4)}
		for pb.Next() {
			rr.reset()
			h.ServeHTTP(rr, req)
			if rr.code != http.StatusOK {
				b.Fatalf("status %d", rr.code)
			}
		}
	})
}

// BenchmarkRouteAB measures the fleet A/B serving path end to end: the full
// handler stack of BenchmarkServeHTTPCached plus interning against the
// router's base dictionary, the sticky weighted arm choice, per-arm metrics
// and the X-Serve-Arm response label, over a pool of hot contexts that
// exercises both arms. The A/B hot path must stay zero-allocation — CI gates
// allocs/op at 0.
func BenchmarkRouteAB(b *testing.B) {
	rec, ctxs := serveBenchSetup(b)
	reg := fleet.NewRegistry(0)
	if _, err := reg.Add("champion", rec, nil); err != nil {
		b.Fatal(err)
	}
	if _, err := reg.Add("challenger", rec, nil); err != nil {
		b.Fatal(err)
	}
	rt, err := fleet.NewRouter(reg,
		fleet.ArmSpec{Name: "champion", Weight: 9},
		fleet.ArmSpec{Name: "challenger", Weight: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close()
	h := serve.New(rec, serve.Options{DefaultN: 5, Fleet: rt})

	targets := make([]string, 0, 16)
	for i := 0; i < 16 && i < len(ctxs); i++ {
		targets = append(targets, "/suggest?q="+url.QueryEscape(ctxs[i][0]))
	}
	// Requests are built once and shared (the handler never mutates them),
	// and every target is served enough times up front to fill the cache,
	// the pools and the tracer's 256-trace retention ring, so the timed
	// region starts at steady state even under CI's short -benchtime. The
	// gate asserts the hot path, not first-touch fills.
	reqs := make([]*http.Request, len(targets))
	for i, target := range targets {
		reqs[i] = httptest.NewRequest(http.MethodGet, target, nil)
	}
	warmRR := &benchRecorder{header: make(http.Header, 4)}
	for rep := 0; rep < 300/len(reqs)+2; rep++ {
		for _, req := range reqs {
			warmRR.reset()
			h.ServeHTTP(warmRR, req)
		}
	}
	// Serial on purpose: with every buffer preallocated above, allocs/op is
	// exactly the hot path's own count — 0 — independent of -benchtime and
	// GOMAXPROCS, which is what lets CI gate it at zero.
	rr := &benchRecorder{header: make(http.Header, 4)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rr.reset()
		h.ServeHTTP(rr, reqs[i%len(reqs)])
		if rr.code != http.StatusOK {
			b.Fatalf("status %d", rr.code)
		}
	}
}

// BenchmarkShardFanout64 measures the consistent-hash batch fan-out: a
// 64-context POST /suggest/batch split across a 3-shard loopback ring
// (partition by ring lookup, concurrent sub-batches, in-order merge),
// ns/op is per batch. CI gates allocs/op against creep in the fan-out
// machinery (the JSON split/merge dominates; the figure is per 64 contexts).
func BenchmarkShardFanout64(b *testing.B) {
	rec, ctxs := serveBenchSetup(b)
	handlers := make([]http.Handler, 3)
	for i := range handlers {
		handlers[i] = serve.NewHandler(rec, 5)
	}
	router, err := fleet.NewShardRouter(fleet.NewRing(3, 0), fleet.NewLoopbackTransport(handlers...))
	if err != nil {
		b.Fatal(err)
	}
	req := serve.BatchRequest{Requests: make([]serve.BatchItem, 64)}
	for i := range req.Requests {
		req.Requests[i] = serve.BatchItem{Context: ctxs[(i*7)%len(ctxs)], N: 5}
	}
	body, err := json.Marshal(req)
	if err != nil {
		b.Fatal(err)
	}
	// Warm the shard caches so the timed region measures the fan-out
	// machinery, not 64 first-touch trie descents.
	{
		rr := &benchRecorder{header: make(http.Header, 4)}
		for rep := 0; rep < 2; rep++ {
			rr.reset()
			router.ServeHTTP(rr, httptest.NewRequest(http.MethodPost, "/suggest/batch", bytes.NewReader(body)))
			if rr.code != http.StatusOK {
				b.Fatalf("warmup status %d: %s", rr.code, rr.body)
			}
		}
	}
	rr := &benchRecorder{header: make(http.Header, 4)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hr := httptest.NewRequest(http.MethodPost, "/suggest/batch", bytes.NewReader(body))
		rr.reset()
		router.ServeHTTP(rr, hr)
		if rr.code != http.StatusOK {
			b.Fatalf("status %d: %s", rr.code, rr.body)
		}
	}
	b.ReportMetric(64, "contexts/op")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*64), "ns/context")
}

// BenchmarkShardFanout64R2 measures the replicated fan-out against the
// unreplicated one on the same ring: the preference-list planning, attempt
// masks and failover rounds must not regress the pooled fan-out's allocation
// discipline. CI gates the reported fanout-r2-over-r1 allocation ratio
// (healthy path, no failovers) at 1.5; ns/op is one R=2 batch.
func BenchmarkShardFanout64R2(b *testing.B) {
	rec, ctxs := serveBenchSetup(b)
	handlers := make([]http.Handler, 3)
	for i := range handlers {
		handlers[i] = serve.NewHandler(rec, 5)
	}
	build := func(r int) *fleet.ShardRouter {
		router, err := fleet.NewShardRouterOpts(fleet.NewRing(3, 0), fleet.NewLoopbackTransport(handlers...),
			fleet.RouterOptions{Replicas: r})
		if err != nil {
			b.Fatal(err)
		}
		return router
	}
	r1, r2 := build(1), build(2)
	req := serve.BatchRequest{Requests: make([]serve.BatchItem, 64)}
	for i := range req.Requests {
		req.Requests[i] = serve.BatchItem{Context: ctxs[(i*7)%len(ctxs)], N: 5}
	}
	body, err := json.Marshal(req)
	if err != nil {
		b.Fatal(err)
	}
	run := func(router *fleet.ShardRouter, rr *benchRecorder) {
		hr := httptest.NewRequest(http.MethodPost, "/suggest/batch", bytes.NewReader(body))
		rr.reset()
		router.ServeHTTP(rr, hr)
		if rr.code != http.StatusOK {
			b.Fatalf("status %d: %s", rr.code, rr.body)
		}
	}
	// Steady-state allocation ratio: warm both routers' pools and shard
	// caches, then compare averaged allocations per batch.
	rr := &benchRecorder{header: make(http.Header, 4)}
	for rep := 0; rep < 4; rep++ {
		run(r1, rr)
		run(r2, rr)
	}
	allocsR1 := testing.AllocsPerRun(50, func() { run(r1, rr) })
	allocsR2 := testing.AllocsPerRun(50, func() { run(r2, rr) })
	if allocsR1 < 1 {
		allocsR1 = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run(r2, rr)
	}
	b.ReportMetric(64, "contexts/op")
	b.ReportMetric(allocsR2, "r2-allocs/op")
	b.ReportMetric(allocsR2/allocsR1, "fanout-r2-over-r1")
}

// BenchmarkServeHTTPBatch measures POST /suggest/batch end to end with
// 64-context requests: JSON decode, cache front, one batched trie descent
// for the misses, append-encoded response. ns/op is per batch.
func BenchmarkServeHTTPBatch(b *testing.B) {
	rec, ctxs := serveBenchSetup(b)
	h := serve.NewHandler(rec, 5)
	req := serve.BatchRequest{Requests: make([]serve.BatchItem, 64)}
	for i := range req.Requests {
		req.Requests[i] = serve.BatchItem{Context: ctxs[(i*7)%len(ctxs)], N: 5}
	}
	body, err := json.Marshal(req)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rr := &benchRecorder{header: make(http.Header, 4)}
		for pb.Next() {
			hr := httptest.NewRequest(http.MethodPost, "/suggest/batch", bytes.NewReader(body))
			rr.reset()
			h.ServeHTTP(rr, hr)
			if rr.code != http.StatusOK {
				b.Fatalf("status %d: %s", rr.code, rr.body)
			}
		}
	})
	b.ReportMetric(64, "contexts/op")
}

// --- batched-descent benchmarks ---------------------------------------------

// batchBenchInputs draws a 64-context batch from the test contexts with the
// skew real batch traffic has (power-law head repetition — the same shape
// cmd/loadgen replays), so the batch contains both near-duplicate and
// distinct contexts.
func batchBenchInputs(b *testing.B) (*compiled.Model, []query.Seq, []int) {
	rec, _ := serveBenchSetup(b)
	c, _ := benchSetup(b)
	ctxs := c.TestContexts(2, 256)
	if len(ctxs) < 64 {
		b.Skip("not enough contexts")
	}
	cm := rec.CompiledModel()
	if cm == nil {
		b.Fatal("recommender did not compile")
	}
	rng := rand.New(rand.NewSource(3))
	zipf := rand.NewZipf(rng, 1.2, 8, uint64(len(ctxs)-1))
	batch := make([]query.Seq, 64)
	ns := make([]int, 64)
	for i := range batch {
		batch[i] = ctxs[zipf.Uint64()]
		ns[i] = 5
	}
	return cm, batch, ns
}

// BenchmarkPredictBatch64 scores a 64-context batch through one shared-
// scratch batched descent; compare ns/context with
// BenchmarkPredictSequential64, the same work as 64 single calls.
func BenchmarkPredictBatch64(b *testing.B) {
	cm, ctxs, ns := batchBenchInputs(b)
	sink := 0
	emit := func(i int, preds []model.Prediction) { sink += len(preds) }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cm.PredictBatch(ctxs, ns, emit)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*64), "ns/context")
	if sink == 0 {
		b.Fatal("batch produced no predictions")
	}
}

// BenchmarkPredictSequential64 is the before side of the batched-descent
// comparison: the same 64 contexts predicted one AppendPredictions call at a
// time.
func BenchmarkPredictSequential64(b *testing.B) {
	cm, ctxs, ns := batchBenchInputs(b)
	buf := make([]model.Prediction, 0, 8)
	sink := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, ctx := range ctxs {
			buf = cm.AppendPredictions(buf[:0], ctx, ns[j])
			sink += len(buf)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*64), "ns/context")
	if sink == 0 {
		b.Fatal("no predictions")
	}
}

// BenchmarkPredictBatch64Parallel is the fanned-out side of the batched-
// descent comparison: the same 64-context batch split across GOMAXPROCS
// workers. Answers are bit-identical to BenchmarkPredictBatch64; at
// GOMAXPROCS >= 4 the ns/context must beat the sequential batch.
func BenchmarkPredictBatch64Parallel(b *testing.B) {
	cm, ctxs, ns := batchBenchInputs(b)
	var sink atomic.Int64
	emit := func(i int, preds []model.Prediction) { sink.Add(int64(len(preds))) }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cm.PredictBatchParallel(ctxs, ns, 0, emit)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*64), "ns/context")
	if sink.Load() == 0 {
		b.Fatal("batch produced no predictions")
	}
}

// --- cold-start benchmarks ---------------------------------------------------

var (
	coldOnce                       sync.Once
	coldV2, coldV3, coldV4, coldV5 string
	coldErr                        error
)

// coldStartSetup persists the serving benchmark model once in all current
// formats: V002 (varint compiled section, heap decode), V003 (exact flat
// compiled section, mmap), V004 (quantised flat compiled section, mmap) and
// V005 (compact-edge CPS5 section, mmap).
func coldStartSetup(b *testing.B) (v2, v3, v4, v5 string) {
	rec, _ := serveBenchSetup(b)
	coldOnce.Do(func() {
		dir, err := os.MkdirTemp("", "repro-coldstart")
		if err != nil {
			coldErr = err
			return
		}
		write := func(path, version string) error {
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := rec.(*core.Engine).SaveAs(f, version); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		}
		coldV2 = filepath.Join(dir, "model-v2.bin")
		coldV3 = filepath.Join(dir, "model-v3.bin")
		coldV4 = filepath.Join(dir, "model-v4.bin")
		coldV5 = filepath.Join(dir, "model-v5.bin")
		if err := write(coldV2, "QRECV002"); err != nil {
			coldErr = err
			return
		}
		if err := write(coldV3, "QRECV003"); err != nil {
			coldErr = err
			return
		}
		if err := write(coldV4, "QRECV004"); err != nil {
			coldErr = err
			return
		}
		coldErr = write(coldV5, "QRECV005")
	})
	if coldErr != nil {
		b.Fatal(coldErr)
	}
	return coldV2, coldV3, coldV4, coldV5
}

// BenchmarkColdStartHeapV2 is the before side of the mmap comparison: a full
// V002 load — dictionary, interpreted mixture, varint-decoded compiled
// section — into freshly allocated heap structures.
func BenchmarkColdStartHeapV2(b *testing.B) {
	v2, _, _, _ := coldStartSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec, err := core.LoadPath(v2)
		if err != nil {
			b.Fatal(err)
		}
		if rec.CompiledModel() == nil || rec.LoadInfo().Mode != core.LoadModeHeap {
			b.Fatalf("unexpected load: %+v", rec.LoadInfo())
		}
	}
}

// BenchmarkColdStartMmapV3 is the after side: a V003 LoadPath — dictionary
// decode plus an mmap of the compiled section; the mixture stays on disk
// until first use and trie pages fault in lazily.
func BenchmarkColdStartMmapV3(b *testing.B) {
	_, v3, _, _ := coldStartSetup(b)
	if _, err := core.LoadPath(v3); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec, err := core.LoadPath(v3)
		if err != nil {
			b.Fatal(err)
		}
		if rec.CompiledModel() == nil {
			b.Fatal("no compiled model")
		}
		// Release the mapping eagerly: thousands of live mappings would trip
		// vm.max_map_count long before the GC ran any cleanups.
		if err := rec.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkColdStartMmapV4 is the quantised variant: a V004 LoadPath maps
// the roughly-half-size CPS4 blob — same O(1) mapping work as V003, smaller
// resident ceiling once pages fault in.
func BenchmarkColdStartMmapV4(b *testing.B) {
	_, _, v4, _ := coldStartSetup(b)
	if _, err := core.LoadPath(v4); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec, err := core.LoadPath(v4)
		if err != nil {
			b.Fatal(err)
		}
		if cm := rec.CompiledModel(); cm == nil || !cm.Quantised() {
			b.Fatal("no quantised compiled model")
		}
		if err := rec.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkColdStartMmapV5 is the compact-edge variant: a V005 LoadPath maps
// the CPS5 blob and eagerly varint-decodes only the CSR offsets; follower
// edges stay encoded until a descent touches their node.
func BenchmarkColdStartMmapV5(b *testing.B) {
	_, _, _, v5 := coldStartSetup(b)
	if _, err := core.LoadPath(v5); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec, err := core.LoadPath(v5)
		if err != nil {
			b.Fatal(err)
		}
		if cm := rec.CompiledModel(); cm == nil || !cm.Quantised() {
			b.Fatal("no quantised compiled model")
		}
		if err := rec.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- future-work extension benchmarks ---------------------------------------

// BenchmarkExtensionHMM trains the hidden-intent HMM (the paper's Sec. VI
// future-work model) and reports its final training log-likelihood.
func BenchmarkExtensionHMM(b *testing.B) {
	c, _ := benchSetup(b)
	var last float64
	for i := 0; i < b.N; i++ {
		m, err := hmm.Train(c.TrainAgg, hmm.DefaultConfig(c.Vocab()))
		if err != nil {
			b.Fatal(err)
		}
		ll := m.LogLikelihoods()
		last = ll[len(ll)-1]
	}
	b.ReportMetric(last, "final-log10-likelihood")
}

// BenchmarkExtensionComparison runs the HMM/cluster-vs-MVMM comparison and
// reports the MVMM-over-cluster NDCG@5 margin (the paper's Sec. II
// replacement-vs-next-query critique).
func BenchmarkExtensionComparison(b *testing.B) {
	c, m := benchSetup(b)
	var r experiments.ExtensionResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.Extensions(c, m)
		if err != nil {
			b.Fatal(err)
		}
	}
	idx := map[string]int{}
	for i, name := range r.Models {
		idx[name] = i
	}
	b.ReportMetric(r.NDCG5[idx["MVMM"]]-r.NDCG5[idx["Cluster"]], "mvmm-minus-cluster-ndcg5")
}

// BenchmarkExtensionDrift measures the retraining-frequency analysis and
// reports the final-slice coverage advantage of retraining.
func BenchmarkExtensionDrift(b *testing.B) {
	c, _ := benchSetup(b)
	var r experiments.DriftResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.Drift(c, 2, 1500)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := r.Slices - 1
	b.ReportMetric(r.RetrCov[last]-r.StaleCov[last], "retrain-coverage-gain")
}

// BenchmarkIngestSegment drives one full pass of the streaming ingestion
// loop over a pre-written query log — tail read, session segmentation,
// write-ahead segment logging and incremental count updates, recompiles
// disabled — and reports sustained records/s. Each iteration starts from a
// fresh write-log, so the op is a fixed unit of work and its allocs/op gate
// in the Makefile pins the per-record allocation budget of the loop.
func BenchmarkIngestSegment(b *testing.B) {
	cfg := loggen.DefaultConfig()
	cfg.Universe = loggen.UniverseConfig{
		Topics: 16, RootsPerTopic: 4, ChainDepth: 2,
		SynonymFrac: 0.3, Universals: 6, Generics: 4, Seed: 5,
	}
	cfg.Machines = 50
	cfg.Seed = 5
	g, err := loggen.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	logPath := filepath.Join(dir, "queries.log")
	f, err := os.Create(logPath)
	if err != nil {
		b.Fatal(err)
	}
	wr := logfmt.NewWriter(f)
	records := 0
	if _, err := g.GenerateRecords(300, func(r logfmt.Record) error {
		records++
		return wr.Write(r)
	}); err != nil {
		b.Fatal(err)
	}
	if err := wr.Flush(); err != nil {
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}
	walPath := filepath.Join(dir, "ingest.wal")

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ing, err := stream.NewIngester(stream.Config{
			LogPath:           logPath,
			WALPath:           walPath,
			ModelPath:         filepath.Join(dir, "model.bin"),
			Train:             core.Config{ReductionThreshold: 0, SessionGap: 30 * time.Minute},
			SegmentRecords:    256,
			RecompileSessions: 1 << 62, // count updates only: never recompile
		})
		if err != nil {
			b.Fatal(err)
		}
		for {
			progressed, err := ing.Step()
			if err != nil {
				b.Fatal(err)
			}
			if !progressed {
				break
			}
		}
		if err := ing.Close(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if err := os.Remove(walPath); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
	b.ReportMetric(float64(records)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
}

// BenchmarkServeHTTPCachedTraced measures the instrumented serving hot path:
// the full handler stack of BenchmarkServeHTTPCached with the request trace,
// per-route and per-stage histograms and the X-Trace-Id/X-Request-Id
// response headers all active. Serial with a warmed cache and a pre-filled
// trace retention ring, so CI can gate allocs/op at exactly 0 — the
// observability layer must be free on the hot path.
func BenchmarkServeHTTPCachedTraced(b *testing.B) {
	rec, ctxs := serveBenchSetup(b)
	h := serve.NewHandler(rec, 5)
	targets := make([]string, 0, 16)
	for i := 0; i < 16 && i < len(ctxs); i++ {
		targets = append(targets, "/suggest?q="+url.QueryEscape(ctxs[i][0]))
	}
	reqs := make([]*http.Request, len(targets))
	for i, target := range targets {
		reqs[i] = httptest.NewRequest(http.MethodGet, target, nil)
	}
	// Warm past the tracer's retention ring (256): while the ring is
	// filling, every finish pins its pooled trace and the pool allocates a
	// replacement. At steady state retention is a pointer swap.
	rr := &benchRecorder{header: make(http.Header, 4)}
	for rep := 0; rep < 300/len(reqs)+2; rep++ {
		for _, req := range reqs {
			rr.reset()
			h.ServeHTTP(rr, req)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rr.reset()
		h.ServeHTTP(rr, reqs[i%len(reqs)])
		if rr.code != http.StatusOK {
			b.Fatalf("status %d", rr.code)
		}
	}
	if rr.Header().Get("X-Trace-Id") == "" {
		b.Fatal("tracing not active on the benched path")
	}
}

// BenchmarkHistogramRecord measures one lock-free histogram record — the
// primitive every request-path instrument rides on. CI gates allocs/op at 0.
func BenchmarkHistogramRecord(b *testing.B) {
	var h obs.Histogram
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Record(int64(i & 0xffff))
	}
	if h.Count() != uint64(b.N) {
		b.Fatalf("count = %d, want %d", h.Count(), b.N)
	}
}
